"""Hybrid path-switch system: plan-time selection, online switchover,
hysteresis, and the interplay with prefetch and fault degradation.

Covers the PR-9 tentpole end to end -- :func:`choose_path` planner
signals, :class:`HybridConfig` validation, window-boundary promote /
demote decisions with cooldown hysteresis, switches while a prefetch is
in flight, degradation taking precedence over voluntary switching, and
the parity contract (engine parity plus bit-exact self-replay of a
trace run that switches mid-run).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.access import AccessPattern, AccessSummary
from repro.analysis.alias import AllocSite
from repro.analysis.locality import choose_path
from repro.bench.harness import ModuleMemo
from repro.cache.config import SectionConfig
from repro.cache.hybrid import HybridConfig, HybridManager
from repro.core import MiraController, run_plan
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.ir.types import FloatType
from repro.memsim.address import PAGE_SIZE
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.workloads import make_workload
from repro.workloads.trace import (
    compare_traces,
    make_system,
    replay_events,
    run_scenario,
)

COST = CostModel()
LINE = 256
WINDOW = 64


@pytest.fixture(autouse=True)
def _pin_env(monkeypatch):
    # hybrid decisions ride the access stream; results must not depend
    # on ambient engine/prefetch overrides
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_PREFETCH", raising=False)


def _mgr(local_pages: int = 64, window: int = WINDOW, cooldown: int = 2):
    hc = HybridConfig(window=window, cooldown_windows=cooldown)
    return HybridManager(COST, local_pages * PAGE_SIZE, hybrid_config=hc)


def _plan(mgr, name="g", size_bytes=32 * 1024, path="swap", names=("data",)):
    return mgr.plan_group(
        SectionConfig(name=name, size_bytes=size_bytes, line_size=LINE),
        list(names),
        path=path,
    )


def _page_cycle(mgr, obj_id, n, pages=128, is_write=False):
    """n single-word accesses striding one page at a time, cyclically:
    every access misses on both paths once the working set exceeds the
    local budget, with worst-case page amplification (8 B per 4 KiB)."""
    for i in range(n):
        mgr.access(obj_id, (i % pages) * PAGE_SIZE, 8, is_write)


# -- plan-time path selection -------------------------------------------------


def _summary(pattern, stride_elems=None):
    site = AllocSite(0, "a", "main", 1024, FloatType())
    return AccessSummary(site=site, pattern=pattern, stride_elems=stride_elems)


def test_choose_path_dense_stream_prefers_swap():
    assert choose_path(_summary(AccessPattern.SEQUENTIAL), COST) == "swap"
    # 32-byte stride still faults once per 128 accesses on the swap path
    assert choose_path(_summary(AccessPattern.STRIDED, 4), COST) == "swap"


def test_choose_path_sparse_or_irregular_prefers_object():
    # 256-byte stride: one swap fault per 16 accesses loses to line fetches
    assert choose_path(_summary(AccessPattern.STRIDED, 32), COST) == "object"
    # page-sized stride: every access faults a whole page
    assert choose_path(_summary(AccessPattern.STRIDED, 512), COST) == "object"
    assert choose_path(_summary(AccessPattern.INDIRECT), COST) == "object"
    assert choose_path(_summary(AccessPattern.RANDOM), COST) == "object"


def test_planner_assigns_mixed_paths_to_graph_sections():
    wl = make_workload("graph_traversal", num_nodes=500, num_edges=1500)
    memo = ModuleMemo(wl)
    local = max(4096, memo.footprint_bytes // 2)
    controller = MiraController(
        memo.fresh, COST, local, data_init=wl.data_init, entry=wl.entry,
        max_iterations=2,
    )
    program = controller.optimize()
    paths = {sp.config.name: sp.path for sp in program.plan.sections}
    assert set(paths.values()) <= {"swap", "object"}
    # the dense stream section starts on swap, the indirect one on object
    assert "swap" in paths.values()
    assert "object" in paths.values()


# -- config validation / planning API ----------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window": 0},
        {"window": -5},
        {"promote_miss_rate": 0.95, "demote_miss_rate": 0.9},
        {"promote_miss_rate": 0.0},
        {"demote_miss_rate": 1.5},
        {"cooldown_windows": -1},
    ],
)
def test_hybrid_config_rejects_bad_thresholds(kwargs):
    with pytest.raises(ConfigError):
        HybridConfig(**kwargs)


def test_plan_group_rejects_unknown_path():
    mgr = _mgr()
    with pytest.raises(ConfigError, match="unknown path"):
        _plan(mgr, path="hybrid")


def test_plan_group_is_idempotent():
    mgr = _mgr()
    first = _plan(mgr, path="object")
    again = mgr.plan_group(
        SectionConfig(name="g", size_bytes=4096, line_size=LINE),
        ["other"],
        path="swap",
    )
    assert again is first  # replaying mem.plan onto a planned system
    assert again.path == "object"
    assert list(mgr.sections()) == ["g"]


def test_planned_members_join_group_on_allocation():
    mgr = _mgr()
    group = _plan(mgr, path="object")
    obj = mgr.allocate(8 * PAGE_SIZE, name="data")
    other = mgr.allocate(PAGE_SIZE, name="unrelated")
    assert group.obj_ids == [obj.obj_id]
    mgr.access(obj.obj_id, 0, 8, False)
    assert mgr.sections()["g"].stats.misses == 1  # routed to the section
    mgr.free(other.obj_id)
    mgr.free(obj.obj_id)
    assert group.obj_ids == []


# -- online switchover --------------------------------------------------------


def test_swap_group_promotes_at_window_boundary():
    mgr = _mgr()
    group = _plan(mgr, path="swap")
    obj = mgr.allocate(128 * PAGE_SIZE, name="data")
    assert "g" not in mgr.sections()  # swap path: section not yet open
    _page_cycle(mgr, obj.obj_id, WINDOW)  # 100% miss, amplification 512
    assert [s["dir"] for s in mgr.switch_log] == ["promote"]
    assert group.path == "object"
    assert "g" in mgr.sections()
    # post-switch the 32 KiB section holds all 128 touched lines: the
    # second pass hits, so the group settles and never demotes back
    _page_cycle(mgr, obj.obj_id, 4 * WINDOW)
    assert len(mgr.switch_log) == 1
    assert mgr.sections()["g"].stats.hits > 0


def test_switch_emits_event_and_charges_overhead():
    mgr = _mgr()
    tracer = Tracer()
    mgr.set_tracer(tracer)
    _plan(mgr, path="swap")
    obj = mgr.allocate(128 * PAGE_SIZE, name="data")
    _page_cycle(mgr, obj.obj_id, WINDOW)
    switches = [(t, f) for k, t, f in tracer.events if k == "path.switch"]
    assert len(switches) == 1
    t, fields = switches[0]
    assert fields["sec"] == "g"
    assert fields["dir"] == "promote"
    assert fields["path"] == "object"
    assert fields["miss"] == 1.0
    assert fields["amp"] == PAGE_SIZE / 8
    assert fields["ov"] == COST.path_switch_ns
    # switch_log records the post-overhead clock: the flip itself is priced
    assert mgr.switch_log[0]["t"] == t + COST.path_switch_ns


def test_hysteresis_switches_at_most_once_per_window():
    # a 16-line section over a 128-page cycle thrashes on BOTH paths:
    # without hysteresis the group would flap at every window boundary
    def drive(cooldown):
        mgr = _mgr(cooldown=cooldown)
        _plan(mgr, size_bytes=16 * LINE, path="swap")
        obj = mgr.allocate(128 * PAGE_SIZE, name="data")
        marks = []
        for i in range(18 * WINDOW):
            mgr.access(obj.obj_id, (i % 128) * PAGE_SIZE, 8, False)
            if len(mgr.switch_log) > len(marks):
                marks.append(i)
        return mgr.switch_log, marks

    log, marks = drive(cooldown=2)
    assert len(log) >= 2
    # directions strictly alternate: never two flips the same way
    for a, b in zip(log, log[1:]):
        assert a["dir"] != b["dir"]
    gaps = [b - a for a, b in zip(marks, marks[1:])]
    # at most one switch per window, and every cooldown is honored:
    # consecutive switches are >= (cooldown + 1) windows apart
    assert all(g >= 3 * WINDOW for g in gaps)

    log0, marks0 = drive(cooldown=0)
    gaps0 = [b - a for a, b in zip(marks0, marks0[1:])]
    assert all(g >= WINDOW for g in gaps0)  # still once per window, max
    assert len(log0) > len(log)  # cooldown is what spaces the flips out


def test_promote_with_prefetch_in_flight():
    mgr = _mgr()
    group = _plan(mgr, path="swap")
    obj = mgr.allocate(128 * PAGE_SIZE, name="data")
    _page_cycle(mgr, obj.obj_id, WINDOW - 1)
    # swap prefetch issued right before the boundary access promotes the
    # group: the in-flight pages must settle (or count wasted), not crash
    mgr.prefetch(obj.obj_id, 64 * PAGE_SIZE, 4 * PAGE_SIZE)
    mgr.access(obj.obj_id, (WINDOW - 1) * PAGE_SIZE, 8, False)
    assert [s["dir"] for s in mgr.switch_log] == ["promote"]
    assert group.path == "object"
    _page_cycle(mgr, obj.obj_id, 4 * WINDOW)  # object path fully live
    assert mgr.sections()["g"].stats.hits > 0


def test_promote_backs_off_when_budget_is_committed():
    mgr = _mgr(local_pages=64)
    mgr.plan_group(
        SectionConfig(name="big", size_bytes=60 * PAGE_SIZE, line_size=LINE),
        ["big"],
        path="object",
    )
    group = _plan(mgr, path="swap")  # 32 KiB would not fit: 60 + 8 > 64 pages
    obj = mgr.allocate(128 * PAGE_SIZE, name="data")
    _page_cycle(mgr, obj.obj_id, 6 * WINDOW)
    # every eligible window retries, fails the budget check, and backs
    # off for a cooldown instead of failing the run
    assert mgr.switch_log == []
    assert group.path == "swap"
    assert "g" not in mgr.sections()


# -- degradation wins ---------------------------------------------------------


def test_no_voluntary_switching_while_faults_are_active():
    mgr = _mgr()
    group = _plan(mgr, path="swap")
    obj = mgr.allocate(128 * PAGE_SIZE, name="data")
    mgr.enable_faults(FaultPlan(seed=1))  # injector active, zero loss
    _page_cycle(mgr, obj.obj_id, 4 * WINDOW)  # promote-worthy throughout
    assert mgr.switch_log == []
    assert group.path == "swap"


def test_degradation_remap_locks_group_on_swap():
    mgr = _mgr()
    tracer = Tracer()
    mgr.set_tracer(tracer)
    group = _plan(mgr, path="object")
    obj = mgr.allocate(128 * PAGE_SIZE, name="data")
    mgr.enable_faults(FaultPlan(seed=1, loss_prob=0.5, breaker_threshold=2))
    mgr.access(obj.obj_id, 0, 8, False)
    # breaker trips mid network op; the next access applies the remap
    mgr._note_persistent_failure("read")
    mgr.access(obj.obj_id, PAGE_SIZE, 8, False)
    assert [d["action"] for d in mgr.degrade_log] == ["remap_swap"]
    assert group.path == "swap"  # reconciled with the shed section
    assert group.locked
    # the remap is a degradation, not a voluntary switch: no path.switch
    assert mgr.switch_log == []
    assert not any(k == "path.switch" for k, _, _ in tracer.events)
    # even with faults cleared, a degraded group never promotes again
    mgr.enable_faults(None)
    _page_cycle(mgr, obj.obj_id, 4 * WINDOW)
    assert mgr.switch_log == []
    assert group.path == "swap"


# -- parity contract ----------------------------------------------------------


def _graph_plan():
    wl = make_workload("graph_traversal", num_nodes=500, num_edges=1500)
    memo = ModuleMemo(wl)
    local = max(4096, memo.footprint_bytes // 2)
    controller = MiraController(
        memo.fresh, COST, local, data_init=wl.data_init, entry=wl.entry,
        max_iterations=2,
    )
    return wl, controller.optimize(), local


def test_run_plan_hybrid_materializes_planned_paths():
    wl, program, local = _graph_plan()
    tracer = Tracer(access_log=True)
    res = run_plan(
        program.module, COST, local, data_init=wl.data_init, entry=wl.entry,
        hybrid=True, tracer=tracer,
    )
    wl.verify_results(res.results)
    planned = {
        sp.config.name: sp.path for sp in program.plan.sections
    }
    logged = {
        f["sec"]: f["path"] for k, _, f in tracer.events if k == "mem.plan"
    }
    assert logged == planned  # the trace is self-describing from event 0


def test_run_plan_hybrid_engine_parity():
    wl, program, local = _graph_plan()
    runs = {}
    for engine in ("reference", "compiled", "codegen"):
        os.environ["REPRO_ENGINE"] = engine
        try:
            tracer = Tracer()
            res = run_plan(
                program.module, COST, local, data_init=wl.data_init,
                entry=wl.entry, hybrid=True, tracer=tracer,
            )
        finally:
            os.environ.pop("REPRO_ENGINE", None)
        wl.verify_results(res.results)
        runs[engine] = (res.elapsed_ns, tracer.digest())
    assert runs["reference"] == runs["compiled"] == runs["codegen"]


def test_trace_self_replay_reproduces_midrun_switch():
    tracer = Tracer(access_log=True)
    res = run_scenario("mixed_rw", "hybrid", 0.5, tracer=tracer)
    switches = [f for k, _, f in tracer.events if k == "path.switch"]
    assert switches, "mixed_rw must demonstrate a profitable mid-run switch"
    assert switches[0]["dir"] == "promote"
    fresh = make_system("hybrid", res.local_mem_bytes)
    tr2 = Tracer(access_log=True)
    fresh.set_tracer(tr2)
    events = [{"k": k, "t": t, **f} for k, t, f in tracer.events]
    replayed = replay_events(fresh, events, elapsed_ns=res.elapsed_ns)
    compare_traces(tracer.events, tr2.events, context="mixed_rw/hybrid")
    assert replayed.elapsed_ns == res.elapsed_ns
    assert replayed.counters == res.sections
    # the replayed manager re-derived the same switches from the stream
    assert [s["dir"] for s in fresh.switch_log] == [s["dir"] for s in switches]
    assert [s["sec"] for s in fresh.switch_log] == [s["sec"] for s in switches]
