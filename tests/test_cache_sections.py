"""Cache-section unit tests: the three structures, prefetch, hints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.config import SectionConfig, Structure
from repro.cache.section import make_section
from repro.errors import ConfigError
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.network import Network


def _section(structure, size=8 * 64, line=64, ways=2, **kw):
    cost = CostModel()
    clock = VirtualClock()
    net = Network(cost, clock)
    cfg = SectionConfig("t", size, line, structure, ways=ways, **kw)
    return make_section(cfg, cost, clock, net), clock, net


# -- config validation --------------------------------------------------------


def test_config_rejects_bad_line():
    with pytest.raises(ConfigError):
        SectionConfig("x", 1024, 0)


def test_config_rejects_size_below_line():
    with pytest.raises(ConfigError):
        SectionConfig("x", 32, 64)


def test_config_rejects_bad_fetch_bytes():
    with pytest.raises(ConfigError):
        SectionConfig("x", 1024, 64, fetch_bytes=128)


def test_config_metadata_bytes():
    cfg = SectionConfig("x", 1024, 64, metadata_per_line=16)
    assert cfg.metadata_bytes() == 16 * 16
    assert SectionConfig("x", 1024, 64, metadata_free=True).metadata_bytes() == 0


# -- generic behaviour (parametrized over structures) ---------------------------

STRUCTURES = [Structure.DIRECT, Structure.SET_ASSOCIATIVE, Structure.FULLY_ASSOCIATIVE]


@pytest.mark.parametrize("structure", STRUCTURES)
def test_miss_then_hit(structure):
    sec, clock, _ = _section(structure)
    assert sec.access(1, 0, 8, False) is False  # cold miss
    assert sec.access(1, 0, 8, False) is True  # now resident
    assert sec.stats.misses == 1
    assert sec.stats.hits == 1


@pytest.mark.parametrize("structure", STRUCTURES)
def test_miss_charges_network_time(structure):
    sec, clock, _ = _section(structure)
    sec.access(1, 0, 8, False)
    assert clock.now >= CostModel().net_rtt_ns


@pytest.mark.parametrize("structure", STRUCTURES)
def test_access_spanning_lines_touches_both(structure):
    sec, _, _ = _section(structure)
    sec.access(1, 60, 8, False)  # spans lines 0 and 1
    assert sec.stats.accesses == 2


@pytest.mark.parametrize("structure", STRUCTURES)
def test_write_marks_dirty_and_eviction_writes_back(structure):
    sec, _, net = _section(structure, size=2 * 64)
    sec.access(1, 0, 8, True)
    written_before = net.stats.bytes_written
    # force eviction of line 0 by filling the section and colliding
    for i in range(1, 40):
        sec.access(1, i * 64, 8, False)
    assert net.stats.bytes_written > written_before


@pytest.mark.parametrize("structure", STRUCTURES)
def test_prefetch_hides_latency(structure):
    sec, clock, _ = _section(structure)
    sec.prefetch_line((1, 0))
    # wait out the fetch
    clock.advance(1e7, "compute")
    t0 = clock.now
    hit = sec.access(1, 0, 8, False)
    assert hit is True
    # only the hit overhead was charged, no network wait
    assert clock.now - t0 < 1000


@pytest.mark.parametrize("structure", STRUCTURES)
def test_early_access_waits_remainder(structure):
    sec, clock, _ = _section(structure)
    sec.prefetch_line((1, 0))
    t0 = clock.now
    sec.access(1, 0, 8, False)  # arrives before the line is ready
    assert sec.stats.prefetch_hits == 1
    assert clock.now > t0  # waited the remainder


@pytest.mark.parametrize("structure", STRUCTURES)
def test_native_access_charges_no_lookup(structure):
    sec, clock, _ = _section(structure)
    sec.access(1, 0, 8, False)
    t0 = clock.now
    sec.access(1, 0, 8, False, native=True)
    assert clock.now == t0  # dereference elided entirely
    assert sec.stats.native_accesses == 1


@pytest.mark.parametrize("structure", STRUCTURES)
def test_evict_hint_prioritizes_victim(structure):
    # section with 4 lines; hint line 0, then overflow: the hinted line
    # must be chosen over LRU for structures with victim choice
    sec, _, _ = _section(structure, size=4 * 64, ways=4)
    for i in range(4):
        sec.access(1, i * 64, 8, False)
    sec.evict_hint_line((1, 0))
    before = sec.stats.hinted_evictions
    for i in range(4, 12):
        sec.access(1, i * 64, 8, False)
    if structure is not Structure.DIRECT:
        assert sec.stats.hinted_evictions > before


@pytest.mark.parametrize("structure", STRUCTURES)
def test_touch_clears_evictable_mark(structure):
    sec, _, _ = _section(structure, size=4 * 64, ways=4)
    sec.access(1, 0, 8, False)
    sec.evict_hint_line((1, 0))
    sec.access(1, 0, 8, False)  # touching cancels the hint
    line = sec.peek((1, 0))
    assert line is not None and not line.evictable


@pytest.mark.parametrize("structure", STRUCTURES)
def test_flush_line_clears_dirty(structure):
    sec, _, net = _section(structure)
    sec.access(1, 0, 8, True)
    sec.flush_line((1, 0))
    assert sec.peek((1, 0)).dirty is False
    assert sec.stats.writebacks == 1


@pytest.mark.parametrize("structure", STRUCTURES)
def test_close_flushes_dirty_lines(structure):
    sec, _, net = _section(structure)
    sec.access(1, 0, 8, True)
    sec.close()
    assert not sec.resident_lines()
    assert net.stats.bytes_written > 0


@pytest.mark.parametrize("structure", STRUCTURES)
def test_shared_section_ignores_hints(structure):
    sec, _, _ = _section(structure, shared=True)
    sec.access(1, 0, 8, False)
    sec.evict_hint_line((1, 0))
    assert not sec.peek((1, 0)).evictable


def test_write_no_fetch_skips_network():
    sec, clock, net = _section(Structure.DIRECT, write_no_fetch=True)
    reads_before = net.stats.bytes_read
    sec.access(1, 0, 8, True)
    assert net.stats.bytes_read == reads_before  # no fetch on write miss
    # reads still fetch
    sec.access(1, 64, 8, False)
    assert net.stats.bytes_read > reads_before


# -- structure-specific placement ------------------------------------------------


def test_direct_mapped_conflict():
    sec, _, _ = _section(Structure.DIRECT, size=4 * 64)
    sec.access(1, 0, 8, False)
    # line index 4 maps to the same slot as line 0 in a 4-line section
    sec.access(1, 4 * 64, 8, False)
    assert sec.peek((1, 0)) is None
    assert sec.stats.evictions == 1


def test_fully_associative_no_conflict_within_capacity():
    sec, _, _ = _section(Structure.FULLY_ASSOCIATIVE, size=8 * 64)
    for i in range(8):
        sec.access(1, i * 64, 8, False)
    assert sec.stats.evictions == 0
    for i in range(8):
        assert sec.access(1, i * 64, 8, False) is True


def test_set_associative_set_overflow():
    sec, _, _ = _section(Structure.SET_ASSOCIATIVE, size=8 * 64, ways=2)
    # 4 sets x 2 ways; lines 0, 4, 8 hit the same set
    sec.access(1, 0, 8, False)
    sec.access(1, 4 * 64, 8, False)
    sec.access(1, 8 * 64, 8, False)
    assert sec.stats.evictions == 1


def test_lru_order_in_fully_associative():
    sec, _, _ = _section(Structure.FULLY_ASSOCIATIVE, size=2 * 64)
    sec.access(1, 0, 8, False)
    sec.access(1, 64, 8, False)
    sec.access(1, 0, 8, False)  # refresh line 0
    sec.access(1, 128, 8, False)  # evicts line 1, not line 0
    assert sec.peek((1, 0)) is not None
    assert sec.peek((1, 1)) is None


@settings(max_examples=30, deadline=None)
@given(
    structure=st.sampled_from(STRUCTURES),
    offsets=st.lists(st.integers(0, 255), min_size=1, max_size=200),
)
def test_property_occupancy_never_exceeds_capacity(structure, offsets):
    sec, _, _ = _section(structure, size=4 * 64)
    for off in offsets:
        sec.access(1, off * 8, 8, bool(off % 3 == 0))
    assert len(sec.resident_lines()) <= sec.config.num_lines
    assert sec.stats.hits + sec.stats.misses == sec.stats.accesses


@settings(max_examples=20, deadline=None)
@given(offsets=st.lists(st.integers(0, 63), min_size=1, max_size=100))
def test_property_fully_assoc_repeat_is_hit(offsets):
    """Accessing the same small working set twice: second pass all hits
    when the set fits."""
    sec, _, _ = _section(Structure.FULLY_ASSOCIATIVE, size=64 * 64)
    for off in offsets:
        sec.access(1, off * 64, 8, False)
    for off in offsets:
        assert sec.access(1, off * 64, 8, False) is True
