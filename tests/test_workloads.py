"""Workload correctness: every workload computes the same verified result
on every memory system (performance differs, values must not)."""

import pytest

from repro.baselines import AIFM, FastSwap, Leap, NativeMemory
from repro.core import MiraController, run_on_baseline, run_plan
from repro.errors import AllocationError
from repro.ir.verifier import verify
from repro.memsim.cost_model import CostModel
from repro.workloads import (
    make_array_sum_workload,
    make_dataframe_workload,
    make_graph_workload,
    make_gpt2_workload,
    make_mcf_workload,
)
from repro.workloads.dataframe import make_dataframe_amm_workload, make_filter_workload

COST = CostModel()

SMALL = {
    "array_sum": lambda: make_array_sum_workload(num_elems=2048),
    "graph": lambda: make_graph_workload(num_edges=1500, num_nodes=400),
    "dataframe": lambda: make_dataframe_workload(num_rows=2048, num_locations=4096),
    "dataframe_amm": lambda: make_dataframe_amm_workload(num_rows=2048),
    "filter": lambda: make_filter_workload(num_rows=2048, repeats=2),
    "mcf": lambda: make_mcf_workload(num_nodes=1024, num_arcs=2048, chases=16),
    "gpt2": lambda: make_gpt2_workload(layers=4, passes=2, d_model=64, seq_len=32),
}


@pytest.mark.parametrize("name", sorted(SMALL))
def test_workload_modules_verify(name):
    wl = SMALL[name]()
    verify(wl.build_module())
    assert wl.footprint_bytes() > 0


@pytest.mark.parametrize("name", sorted(SMALL))
def test_native_result_matches_reference(name):
    wl = SMALL[name]()
    result = run_on_baseline(
        wl.build_module(), NativeMemory(COST, 4 * wl.footprint_bytes()), wl.data_init
    )
    wl.verify_results(result.results)


@pytest.mark.parametrize("name", sorted(SMALL))
@pytest.mark.parametrize("system_cls", [FastSwap, Leap, AIFM])
def test_baselines_compute_same_results(name, system_cls):
    wl = SMALL[name]()
    local = max(8192, wl.footprint_bytes() // 3)
    try:
        result = run_on_baseline(
            wl.build_module(), system_cls(COST, local), wl.data_init
        )
    except AllocationError:
        pytest.skip(f"{system_cls.name} cannot run {name} at 1/3 memory (by design)")
    wl.verify_results(result.results)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_mira_computes_same_results(name):
    wl = SMALL[name]()
    local = max(8192, wl.footprint_bytes() // 3)
    program = MiraController(
        wl.build_module, COST, local, data_init=wl.data_init, max_iterations=1
    ).optimize()
    result = run_plan(program.module, COST, local, wl.data_init)
    wl.verify_results(result.results)


def test_graph_third_array_variant():
    wl = make_graph_workload(
        num_edges=1000, num_nodes=200, with_random_array=True, random_elems=512
    )
    result = run_on_baseline(
        wl.build_module(), NativeMemory(COST, 4 * wl.footprint_bytes()), wl.data_init
    )
    wl.verify_results(result.results)


def test_gpt2_multithreaded_matches_single():
    one = SMALL["gpt2"]()
    mt = make_gpt2_workload(
        layers=4, passes=2, d_model=64, seq_len=32, num_threads=4
    )
    r1 = run_on_baseline(
        one.build_module(), NativeMemory(COST, 4 * one.footprint_bytes()),
        one.data_init,
    )
    r2 = run_on_baseline(
        mt.build_module(), NativeMemory(COST, 4 * mt.footprint_bytes()),
        mt.data_init,
    )
    assert r1.results == r2.results
    assert r2.elapsed_ns < r1.elapsed_ns  # threads shorten virtual time


def test_filter_multithreaded_matches_single():
    one = make_filter_workload(num_rows=2048, repeats=2, num_threads=1)
    mt = make_filter_workload(num_rows=2048, repeats=2, num_threads=4)
    r1 = run_on_baseline(
        one.build_module(), NativeMemory(COST, 4 * one.footprint_bytes()),
        one.data_init,
    )
    r2 = run_on_baseline(
        mt.build_module(), NativeMemory(COST, 4 * mt.footprint_bytes()),
        mt.data_init,
    )
    assert r1.results == r2.results


def test_workload_footprints_scale_with_params():
    small = make_graph_workload(num_edges=1000, num_nodes=100)
    big = make_graph_workload(num_edges=4000, num_nodes=400)
    assert big.footprint_bytes() > 3 * small.footprint_bytes()
