"""Extension features: CXL/storage cost profiles, input adaptation,
far-memory pooling."""

import pytest

from repro.analysis.locality import choose_line_size
from repro.core.adaptive import AdaptiveRunner
from repro.errors import AllocationError, ConfigError
from repro.memsim.cost_model import CostModel
from repro.memsim.pool import (
    FarMemoryPool,
    PlacementPolicy,
    PooledCacheManager,
)
from repro.workloads import make_graph_workload

COST = CostModel()


# -- cost profiles --------------------------------------------------------


def test_cxl_profile_is_faster_and_finer():
    cxl = CostModel.cxl()
    rdma = CostModel.rdma()
    assert cxl.net_rtt_ns < rdma.net_rtt_ns / 5
    assert cxl.net_bandwidth_bpns > rdma.net_bandwidth_bpns
    assert cxl.page_fetch_ns(4096) < rdma.page_fetch_ns(4096)


def test_slow_storage_profile():
    slow = CostModel.slow_storage()
    assert slow.net_rtt_ns > CostModel.rdma().net_rtt_ns * 10


def test_prefetch_distance_shrinks_on_cxl():
    """Shorter round trips need less lookahead (section 4.5: distance is
    derived from measured network delay)."""
    from repro.ir.dialects import scf
    from repro.transforms.prefetch import prefetch_distance

    wl = make_graph_workload(num_edges=256, num_nodes=64)
    module = wl.build_module()
    loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
    assert prefetch_distance(loop, CostModel.cxl()) < prefetch_distance(
        loop, CostModel.slow_storage()
    )


def test_mira_still_wins_under_cxl():
    from repro.baselines import FastSwap, NativeMemory
    from repro.core import MiraController, run_on_baseline

    cxl = CostModel.cxl()
    wl = make_graph_workload(num_edges=1500, num_nodes=400)
    local = wl.footprint_bytes() // 5
    native = run_on_baseline(
        wl.build_module(), NativeMemory(cxl, 4 * wl.footprint_bytes()), wl.data_init
    )
    fast = run_on_baseline(wl.build_module(), FastSwap(cxl, local), wl.data_init)
    program = MiraController(
        wl.build_module, cxl, local, data_init=wl.data_init, max_iterations=2
    ).optimize()
    assert program.best_ns < fast.elapsed_ns
    # the overall penalty for far memory is smaller under CXL
    assert native.elapsed_ns / fast.elapsed_ns > 0.1


# -- input adaptation (section 3) -----------------------------------------


def test_adaptive_runner_reoptimizes_on_degradation():
    # train on skewed inputs (hot nodes -> a small node section suffices
    # under sampling); then feed uniform inputs, which degrade
    skewed = make_graph_workload(num_edges=2000, num_nodes=700, seed=5, )
    uniform = make_graph_workload(num_edges=2000, num_nodes=700, seed=99)
    local = skewed.footprint_bytes() // 4
    runner = AdaptiveRunner(
        skewed.build_module, COST, local,
        train_data_init=skewed.data_init, max_iterations=1,
    )
    baseline = runner.expected_ns
    # same-distribution invocations do not trigger re-optimization
    r1 = runner.invoke(skewed.data_init)
    assert not runner.history[-1].degraded
    # force a degradation: shrink the expectation artificially, then the
    # next invocation re-optimizes with the new inputs
    runner.expected_ns = baseline * 0.5
    runner.invoke(uniform.data_init)
    assert runner.history[-1].degraded
    assert runner.reoptimizations == 1
    # expectation was refreshed from the new round
    assert runner.expected_ns != baseline * 0.5


def test_adaptive_runner_serves_correct_results():
    wl = make_graph_workload(num_edges=1000, num_nodes=300)
    local = wl.footprint_bytes() // 3
    runner = AdaptiveRunner(
        wl.build_module, COST, local,
        train_data_init=wl.data_init, max_iterations=1,
    )
    result = runner.invoke(wl.data_init)
    wl.verify_results(result.results)


# -- far-memory pooling (section 5) ------------------------------------------


def _obj(pool_mgr, size, name):
    return pool_mgr.allocate(size, elem_size=8, name=name)


def test_pool_capacity_placement_balances():
    pool = FarMemoryPool(COST, num_nodes=4, capacity_per_node=1 << 20)
    mgr = PooledCacheManager(COST, 1 << 20, pool)
    for i in range(8):
        _obj(mgr, 128 * 1024, f"o{i}")
    assert all(st.objects == 2 for st in pool.stats)
    assert pool.imbalance() == pytest.approx(1.0)


def test_pool_round_robin_placement():
    pool = FarMemoryPool(
        COST, num_nodes=3, capacity_per_node=1 << 20,
        policy=PlacementPolicy.ROUND_ROBIN,
    )
    mgr = PooledCacheManager(COST, 1 << 20, pool)
    objs = [_obj(mgr, 1024, f"o{i}") for i in range(6)]
    assert [pool.node_of(o.obj_id) for o in objs] == [0, 1, 2, 0, 1, 2]


def test_pool_first_fit_spills():
    pool = FarMemoryPool(
        COST, num_nodes=2, capacity_per_node=100 * 1024,
        policy=PlacementPolicy.FIRST_FIT,
    )
    mgr = PooledCacheManager(COST, 1 << 20, pool)
    a = _obj(mgr, 80 * 1024, "a")
    b = _obj(mgr, 80 * 1024, "b")  # does not fit node 0: spills
    assert pool.node_of(a.obj_id) == 0
    assert pool.node_of(b.obj_id) == 1


def test_pool_exhaustion_raises():
    pool = FarMemoryPool(COST, num_nodes=2, capacity_per_node=4096)
    mgr = PooledCacheManager(COST, 1 << 20, pool)
    _obj(mgr, 4096, "a")
    _obj(mgr, 4096, "b")
    with pytest.raises(AllocationError):
        _obj(mgr, 4096, "c")


def test_pool_free_releases_capacity():
    pool = FarMemoryPool(COST, num_nodes=1, capacity_per_node=4096)
    mgr = PooledCacheManager(COST, 1 << 20, pool)
    a = _obj(mgr, 4096, "a")
    mgr.free(a.obj_id)
    _obj(mgr, 4096, "b")  # fits again
    assert pool.stats[0].objects == 1


def test_pool_traffic_attribution():
    pool = FarMemoryPool(COST, num_nodes=2, capacity_per_node=1 << 20)
    mgr = PooledCacheManager(COST, 1 << 20, pool)
    a = _obj(mgr, 4096, "a")
    mgr.access(a.obj_id, 0, 64, False)
    mgr.access(a.obj_id, 64, 64, True)
    st = pool.stats[pool.node_of(a.obj_id)]
    assert st.bytes_read == 64
    assert st.bytes_written == 64


def test_pool_rejects_zero_nodes():
    with pytest.raises(ConfigError):
        FarMemoryPool(COST, num_nodes=0, capacity_per_node=1)


def test_pooled_manager_runs_whole_workload():
    from repro.core import run_on_baseline

    wl = make_graph_workload(num_edges=800, num_nodes=200)
    pool = FarMemoryPool(COST, num_nodes=3, capacity_per_node=wl.footprint_bytes())
    mgr = PooledCacheManager(COST, wl.footprint_bytes() // 2, pool)
    result = run_on_baseline(wl.build_module(), mgr, wl.data_init)
    wl.verify_results(result.results)
    assert sum(st.objects for st in pool.stats) == 2
