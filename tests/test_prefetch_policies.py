"""Prefetch-policy tests: the strategy interface, the four built-in
policies, the waste-accounting fixes, and per-policy golden digests.

The golden digests pin each policy's full behavior (plan ordering, the
``prefetch.plan``/``prefetch.feedback`` event payloads, issuance under
the capacity guard) on the Leap chassis; any intentional behavior change
must re-pin them, same workflow as ``tests/test_golden_traces.py``.
"""

from __future__ import annotations

import pytest

from repro.baselines import FastSwap
from repro.baselines.leap import Leap
from repro.bench.harness import ModuleMemo
from repro.cache.config import SectionConfig
from repro.cache.section import make_section
from repro.cache.stats import SectionStats
from repro.core import run_on_baseline
from repro.ir.builder import IRBuilder
from repro.ir.types import FloatType
from repro.ir.verifier import verify
from repro.memsim.address import PAGE_SIZE
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.network import Network
from repro.obs import Tracer
from repro.obs.metrics import MetricsRegistry, collect_run_metrics
from repro.prefetch import POLICY_NAMES, PrefetchPolicy, make_policy, policy_from_env
from repro.prefetch.majority import (
    MIN_PREFETCH,
    MajorityPolicy,
    MajorityTrendPrefetcher,
)
from repro.prefetch.programmed import ProgrammedPolicy, lower_prefetch_program
from repro.workloads import make_workload

COST = CostModel()
F64 = FloatType(64)


# -- factory ------------------------------------------------------------------


def test_make_policy_names():
    assert make_policy(None) is not None  # default is the Leap policy
    assert make_policy("none") is None
    assert make_policy("off") is None
    assert make_policy("") is None
    for name in ("leap", "markov", "programmed", "learned"):
        p = make_policy(name)
        assert isinstance(p, PrefetchPolicy)
        assert p.name == name
    assert isinstance(make_policy("majority"), MajorityPolicy)
    assert isinstance(make_policy("  Markov "), PrefetchPolicy)  # normalized
    with pytest.raises(ValueError, match="unknown prefetch policy"):
        make_policy("oracle")
    assert set(POLICY_NAMES) == {"leap", "markov", "programmed", "learned", "none"}


def test_policy_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_PREFETCH", raising=False)
    assert isinstance(policy_from_env(), MajorityPolicy)
    monkeypatch.setenv("REPRO_PREFETCH", "markov")
    assert policy_from_env().name == "markov"
    monkeypatch.setenv("REPRO_PREFETCH", "none")
    assert policy_from_env() is None


def test_leap_policy_is_untraced_for_golden_compat():
    assert MajorityPolicy.traced is False
    for name in ("markov", "programmed", "learned"):
        assert make_policy(name).traced is True


# -- majority-trend edge cases ------------------------------------------------


def test_majority_window_shrinks_to_floor():
    """Useless prefetches halve the window each adapt step until it pins
    at MIN_PREFETCH, never below."""
    pf = MajorityTrendPrefetcher()
    # establish a clean +1 majority and grow the window: record the pages
    # each plan proposes so every issued prefetch counts as useful
    page = 0
    for _ in range(24):
        pf.record(page)
        for p in pf.plan(page):
            pf.record(p)
            page = p
        page += 1
    assert pf._window > MIN_PREFETCH
    # now keep planning from fresh regions and never touch the proposals:
    # every adapt sees useful*2 < issued and halves the window
    base = 1_000_000
    for i in range(12):
        region = base + i * 10_000
        for j in range(4):  # keep the +1 majority alive
            pf.record(region + j)
        assert pf.plan(region + 3), "majority stride lost"
    assert pf._window == MIN_PREFETCH
    pf.plan(base)  # one more adapt at the floor
    assert pf._window == MIN_PREFETCH


def test_majority_diluted_by_random_interleave():
    """Alternating a sequential stream with far random pages leaves the
    +1 delta at exactly half of every window: no majority, no plan."""
    import random

    rng = random.Random(7)
    pf = MajorityTrendPrefetcher()
    page = 0
    for _ in range(40):
        pf.record(page)
        pf.record(page + 1)  # one +1 delta ...
        for _ in range(2):  # ... then two random deltas: 1/3 < majority
            page = rng.randrange(10_000, 1 << 30)
            pf.record(page)
    assert pf.majority_stride() is None
    assert pf.plan(page) == []


def test_majority_stride_flip():
    """When the stream direction flips, the detector follows: the small
    Boyer-Moore window sees the new majority first."""
    pf = MajorityTrendPrefetcher()
    for p in range(0, 40):
        pf.record(p)
    plan_fwd = pf.plan(39)
    assert plan_fwd and plan_fwd[0] == 40
    assert all(b - a == 1 for a, b in zip(plan_fwd, plan_fwd[1:]))
    for p in range(1000, 960, -1):
        pf.record(p)
    assert pf.majority_stride() == -1
    plan_back = pf.plan(961)
    assert plan_back and plan_back[0] == 960
    assert all(a - b == 1 for a, b in zip(plan_back, plan_back[1:]))


# -- markov / learned behavior ------------------------------------------------


def test_markov_learns_transitions():
    p = make_policy("markov")
    for _ in range(3):
        p.record(5)
        p.record(9)
        p.record(3)
    assert p.plan(5)[0] == 9
    assert p.plan(9)[0] == 3
    assert p.plan(777) == []  # never seen


def test_learned_learns_stride():
    p = make_policy("learned")
    for page in range(0, 60, 2):
        p.record(page)
    plan = p.plan(58)
    assert plan[:3] == [60, 62, 64]


@pytest.mark.parametrize("name", ("leap", "markov", "learned"))
def test_policies_deterministic(name):
    """Two instances fed the same stream emit identical plan sequences."""
    import random

    rng = random.Random(11)
    stream = [rng.randrange(0, 64) for _ in range(300)]
    a, b = make_policy(name), make_policy(name)
    plans_a, plans_b = [], []
    for i, page in enumerate(stream):
        a.record(page)
        b.record(page)
        if i % 7 == 0:
            plans_a.append(a.plan(page))
            plans_b.append(b.plan(page))
    assert plans_a == plans_b


def test_snapshot_math():
    p = PrefetchPolicy()
    p.plans, p.planned, p.issued = 2, 6, 4
    p.feedback(1, True, timely=True)
    p.feedback(2, True, timely=False)
    p.feedback(3, False)
    snap = p.snapshot()
    assert snap["useful_timely"] == 1 and snap["useful_late"] == 1
    assert snap["wasted"] == 1
    assert snap["accuracy"] == pytest.approx(2 / 4)
    assert snap["coverage"] == pytest.approx(2 / 3)  # used / (timely + plans)
    assert snap["timeliness"] == pytest.approx(1 / 2)
    assert snap["waste_ratio"] == pytest.approx(1 / 4)


# -- programmed lowering ------------------------------------------------------


def _scan_module(n=1024, reverse=False):
    b = IRBuilder()
    with b.func("main", result_types=[F64]):
        arr = b.ralloc(F64, n, "arr")
        total = b.f64(0.0)
        with b.for_(0, n, iter_args=[total]) as loop:
            idx = b.sub(n - 1, loop.iv) if reverse else loop.iv
            x = b.load(arr, idx)
            b.yield_([b.add(loop.args[0], x)])
        b.ret([loop.results[0]])
    verify(b.module)
    return b.module


def test_lowering_forward_scan():
    program = lower_prefetch_program(_scan_module(1024))
    # 1024 f64 = 8192 B = pages 0..1, ascending
    assert program["segments"] == [
        {"site": "arr", "start": 0, "stop": 1, "step": 1}
    ]


def test_lowering_reverse_scan():
    program = lower_prefetch_program(_scan_module(1024, reverse=True))
    assert program["segments"] == [
        {"site": "arr", "start": 1, "stop": 0, "step": -1}
    ]


def test_lowering_skips_non_literal_bounds():
    b = IRBuilder()
    with b.func("main", result_types=[F64]):
        arr = b.ralloc(F64, 256, "arr")
        with b.for_(0, 8) as outer:
            # inner trip count depends on the outer iv: not literal
            with b.for_(0, outer.iv) as inner:
                b.load(arr, inner.iv)
        b.ret([b.f64(0.0)])
    verify(b.module)
    assert lower_prefetch_program(b.module)["segments"] == []


def test_lowering_missing_entry():
    b = IRBuilder()
    with b.func("helper", result_types=[F64]):
        b.ret([b.f64(0.0)])
    assert lower_prefetch_program(b.module, entry="main")["segments"] == []


def test_programmed_policy_streams_pages():
    policy = ProgrammedPolicy()
    policy.load_program(
        {"entry": "main", "segments": [{"site": "arr", "start": 0, "stop": 9, "step": 1}]}
    )
    fs = FastSwap(COST, 64 * PAGE_SIZE)
    policy.bind(fs)
    obj = fs.allocate(10 * PAGE_SIZE, name="arr")
    base = obj.base_va // PAGE_SIZE
    policy.record(base)
    plan = policy.plan(base)
    assert plan[:4] == [base + 1, base + 2, base + 3, base + 4]
    # pages of unknown objects stay silent
    other = fs.allocate(PAGE_SIZE, name="unrelated")
    assert policy.plan(other.base_va // PAGE_SIZE) == []


def test_programmed_end_to_end_coverage():
    """On a sequential workload the programmed policy prefetches nearly
    every future page exactly (the 3PO claim, scored by its counters)."""
    wl = make_workload("array_sum", num_elems=4096)
    memo = ModuleMemo(wl)
    local = max(4096, int(memo.footprint_bytes * 0.5))
    system = Leap(COST, local, policy="programmed")
    result = run_on_baseline(memo.module, system, wl.data_init, entry=wl.entry)
    wl.verify_results(result.results)
    snap = system.policy.snapshot()
    assert snap["issued"] > 0
    assert snap["accuracy"] == pytest.approx(1.0)
    assert snap["coverage"] > 0.5


# -- waste accounting (in-flight discards) ------------------------------------


def test_drop_object_counts_inflight_prefetch_waste():
    fs = FastSwap(COST, 8 * PAGE_SIZE, policy="markov")
    obj = fs.allocate(4 * PAGE_SIZE, name="x")
    page = obj.base_va // PAGE_SIZE
    fs.swap.prefetch(page, obj.obj_id)
    assert fs.swap._pages[page].ready_at > fs.clock.now  # still in flight
    before = fs.policy.wasted
    fs.swap.drop_object(obj.obj_id)
    assert fs.swap.stats.prefetch_wasted == 1
    assert fs.policy.wasted == before + 1


def test_section_close_counts_inflight_prefetch_waste():
    cost = CostModel()
    clock = VirtualClock()
    sec = make_section(
        SectionConfig("t", 8 * 64, 64), cost, clock, Network(cost, clock)
    )
    sec.prefetch_line((1, 0))
    sec.close()
    assert sec.stats.prefetch_wasted == 1
    # a settled prefetch is not waste
    sec2 = make_section(
        SectionConfig("t", 8 * 64, 64), cost, clock, Network(cost, clock)
    )
    sec2.prefetch_line((1, 0))
    clock.advance(1e9, "compute")
    sec2.close()
    assert sec2.stats.prefetch_wasted == 0


def test_waste_ratio_property_and_publish():
    s = SectionStats()
    assert s.prefetch_waste_ratio == 0.0
    s.prefetches_issued, s.prefetch_wasted = 4, 1
    assert s.prefetch_waste_ratio == pytest.approx(0.25)
    reg = MetricsRegistry()
    s.publish(reg, "cache.swap")
    assert reg.gauge("cache.swap.prefetch_waste_ratio").value == pytest.approx(0.25)


# -- metrics + trace integration ----------------------------------------------


def _leap_run(policy, tracer=None):
    wl = make_workload("array_sum", num_elems=2048)
    memo = ModuleMemo(wl)
    local = max(4096, int(memo.footprint_bytes * 0.5))
    system = Leap(COST, local, policy=policy)
    result = run_on_baseline(
        memo.module, system, wl.data_init, entry=wl.entry, tracer=tracer
    )
    wl.verify_results(result.results)
    return result, system


def test_run_metrics_publish_policy_gauges():
    result, system = _leap_run("markov")
    gauges = collect_run_metrics(result).snapshot()["gauges"]
    assert "prefetch.markov.accuracy" in gauges
    assert "prefetch.markov.coverage" in gauges
    assert "prefetch.markov.timeliness" in gauges
    assert "cache.swap.prefetch_waste_ratio" in gauges
    snap = system.policy.snapshot()
    assert gauges["prefetch.markov.accuracy"] == pytest.approx(snap["accuracy"])


def test_traced_policies_emit_plan_and_feedback_events():
    """A repeating page walk lets markov predict the second pass: plans
    appear as ``prefetch.plan`` and their fates as ``prefetch.feedback``."""
    fs = Leap(COST, 4 * PAGE_SIZE, policy="markov")
    tracer = Tracer()
    fs.set_tracer(tracer)
    obj = fs.allocate(8 * PAGE_SIZE, name="x")
    for _ in range(3):  # pass 1 learns; later passes fault and plan
        for p in range(8):
            fs.access(obj.obj_id, p * PAGE_SIZE, 8, False)
    kinds = {kind for kind, _t, _f in tracer.events}
    assert "prefetch.plan" in kinds
    assert "prefetch.feedback" in kinds
    snap = fs.policy.snapshot()
    assert snap["issued"] > 0
    assert snap["useful_timely"] + snap["useful_late"] + snap["wasted"] > 0


def test_default_policy_emits_no_new_event_kinds(monkeypatch):
    monkeypatch.delenv("REPRO_PREFETCH", raising=False)
    tracer = Tracer()
    _leap_run(None, tracer=tracer)
    kinds = {kind for kind, _t, _f in tracer.events}
    assert "prefetch.plan" not in kinds
    assert "prefetch.feedback" not in kinds


# -- per-policy golden digests ------------------------------------------------

#: policy -> (sha256 of the canonical trace JSONL, event count) for
#: array_sum(2048) at ratio 0.5 on the Leap chassis.  "leap" matches the
#: system golden in test_golden_traces.py by construction.
POLICY_GOLDEN = {
    "leap": (
        "8efdc3f811792e5e89bb4076b887dab16f328d72504cef152ddaa9480d4d260c",
        2057,
    ),
    "markov": (
        "30ca8bb0c6d0f1095b4a8cfe7808d20fdf3c60d13030134cda92b2b592e68071",
        2056,
    ),
    "programmed": (
        "676edd2b9af5c5278ed27ebf826d1b51781c1c085f3b20c3b9ea2a19d223bbe9",
        2062,
    ),
    "learned": (
        "69ba7437a88706b0319c604dd7795da4ef2b9390df71c5328e48752363f9ebf9",
        2059,
    ),
}


@pytest.mark.parametrize("policy", sorted(POLICY_GOLDEN))
def test_policy_golden_trace_digest(policy, monkeypatch):
    monkeypatch.delenv("REPRO_PREFETCH", raising=False)
    tracer = Tracer()
    _leap_run(policy, tracer=tracer)
    digest, events = POLICY_GOLDEN[policy]
    assert (tracer.digest(), len(tracer)) == (digest, events), (
        f"{policy}: trace diverged from the committed digest; if the "
        f"behavior change is intentional, update POLICY_GOLDEN with "
        f"({tracer.digest()!r}, {len(tracer)})"
    )
