"""Golden pins for the trace corpus: generator digests + benchmark cells.

Two layers of freeze:

* **Stream digests** -- SHA-256 over each pinned scenario's raw address
  stream.  These fingerprint the generators alone; a drift here means
  the synthetic workloads themselves changed (a seeded-RNG or algorithm
  change), which silently invalidates every committed BENCH_trace
  baseline and every cross-run comparison.
* **Benchmark cells** -- exact virtual times for a handful of
  (scenario, system) cells spanning the sweep.  These fingerprint the
  replay datapath end to end (region mapping, per-op charges, the
  systems themselves).  ``repro.obs.regress`` gates the full matrix
  against ``BENCH_trace.json`` at 1%; these in-tree pins catch drift
  with no baseline file in sight.

If a change is *intentional*, update the constants here and regenerate
``BENCH_trace.json`` (``PYTHONPATH=src:. python benchmarks/trace_smoke.py``)
in the same commit.
"""

import pytest

from repro.bench.tracebench import RATIO, SYSTEMS, measure_cell
from repro.workloads.trace import SCENARIOS, ops_digest

GOLDEN_DIGESTS = {
    "chase_large": "d361d9c06fa9b2ed79e996ab4c7beebf0931f7dcc8085a4f7dfc486b111d8efe",
    "chase_small": "9003e9e9c03cf80cb42f51b371704436b17a6dcdf9211ec5de40cba25c33896a",
    "mixed_rw": "38a20c119d512f8be6a2a414eafc77b85bfca19fdb3896d3ef0699bf90c5c051",
    "mixed_shift": "81e78d84188493d82c227ba28d922091102e6605e22cca2fc38d3cdab506fae2",
    "seq_scan": "0e6a1da7da815c7d9a55893fc6adb44f162e31e30cecd61ed40f75618d7f3522",
    "seq_stride64": "465b050a7103803288b70e51fcc733b6d2df588b95b8ce7d516708fdaf478798",
    "zipf_cold": "74d8855c70db95344ed26f1c8beca23a64e07dcd5a59dd3410a14a3e0e8e107d",
    "zipf_hot": "da64243de75ac2ac6f4087c2ff490cc8f24c04f9fa32057cd7e22f37d4d8c859",
}

#: exact virtual times for four cells spanning the benchmark matrix
#: (a swap baseline, a Mira geometry, the object runtime, the prefetcher)
GOLDEN_CELLS = {
    ("zipf_hot", "fastswap"): 16016163.799999602,
    ("zipf_hot", "mira-set"): 13231119.480001299,
    ("chase_small", "aifm"): 9537242.88,
    ("seq_scan", "leap"): 2086905.8800000004,
}

GOLDEN_FOOTPRINTS = {
    "chase_large": 4194304,
    "chase_small": 524288,
    "mixed_rw": 524288,
    "mixed_shift": 2359296,
    "seq_scan": 1048576,
    "seq_stride64": 2097152,
    "zipf_cold": 1048576,
    "zipf_hot": 1048576,
}


def test_corpus_matches_golden_set():
    assert set(SCENARIOS) == set(GOLDEN_DIGESTS)


@pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
def test_scenario_digest_pinned(name):
    assert SCENARIOS[name].digest() == GOLDEN_DIGESTS[name]


@pytest.mark.parametrize("name", sorted(GOLDEN_FOOTPRINTS))
def test_scenario_footprint_pinned(name):
    assert SCENARIOS[name].footprint_bytes == GOLDEN_FOOTPRINTS[name]


def test_spec_digest_agrees_with_ops_digest():
    spec = SCENARIOS["zipf_hot"]
    assert spec.digest() == ops_digest(spec.ops())


@pytest.mark.parametrize("cell", sorted(GOLDEN_CELLS))
def test_benchmark_cell_virtual_time_pinned(cell):
    scenario, system = cell
    measured = measure_cell(scenario, system)
    assert measured["elapsed_ns"] == GOLDEN_CELLS[cell]
    assert measured["num_ops"] == 20_000
    assert measured["ratio"] == RATIO


def test_benchmark_matrix_shape():
    # the acceptance floor: >= 8 scenarios x >= 3 systems
    assert len(SCENARIOS) >= 8
    assert len(SYSTEMS) >= 3
