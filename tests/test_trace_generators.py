"""Trace frontend: generator properties, raw-file round-trips, fuzz corpus.

Three layers of guarantees:

* each synthetic generator is deterministic by seed and emits aligned,
  in-span addresses with the access regime it advertises;
* ``write_raw``/``read_raw`` are inverse on both encodings, and every
  malformed input is a typed :class:`TraceFormatError` naming the line;
* a small fuzz corpus (8 seeds x every generator kind) holds the shared
  invariants without pinning any particular stream.
"""

import itertools

import pytest

from repro.errors import TraceError, TraceFormatError
from repro.memsim.address import PAGE_SIZE
from repro.workloads.trace import (
    ACCESS_BYTES,
    SCENARIOS,
    ScenarioSpec,
    mixed_ops,
    ops_digest,
    pointer_chase_ops,
    read_raw,
    sequential_ops,
    write_raw,
    zipf_ops,
)

FUZZ_SEEDS = tuple(range(8))


# -- determinism -------------------------------------------------------------


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_generators_deterministic_by_seed(seed):
    for make in (
        lambda s: zipf_ops(64, 500, seed=s),
        lambda s: sequential_ops(1 << 16, 500, seed=s, read_ratio=0.5),
        lambda s: pointer_chase_ops(64, 500, seed=s),
    ):
        assert list(make(seed)) == list(make(seed))


def test_different_seeds_differ():
    assert list(zipf_ops(64, 500, seed=1)) != list(zipf_ops(64, 500, seed=2))
    assert list(pointer_chase_ops(64, 64, seed=1)) != list(
        pointer_chase_ops(64, 64, seed=2)
    )


def test_scenario_ops_is_a_fresh_iterator_each_call():
    spec = SCENARIOS["zipf_hot"]
    first = list(itertools.islice(spec.ops(), 100))
    second = list(itertools.islice(spec.ops(), 100))
    assert first == second


# -- per-generator shape -----------------------------------------------------


def test_zipf_alignment_and_span():
    ops = list(zipf_ops(32, 2000, seed=3, base=1 << 20))
    assert len(ops) == 2000
    for addr, is_write in ops:
        assert addr % ACCESS_BYTES == 0
        assert (1 << 20) <= addr < (1 << 20) + 32 * PAGE_SIZE
        assert isinstance(is_write, bool)


def test_zipf_skew_follows_alpha():
    def top_page_share(alpha):
        counts = {}
        for addr, _ in zipf_ops(64, 5000, seed=9, alpha=alpha):
            counts[addr // PAGE_SIZE] = counts.get(addr // PAGE_SIZE, 0) + 1
        return max(counts.values()) / 5000

    # hotter alpha concentrates traffic on the hottest page
    assert top_page_share(1.5) > 2 * top_page_share(0.2)


def test_zipf_read_ratio():
    writes = sum(w for _, w in zipf_ops(64, 5000, seed=4, read_ratio=0.7))
    assert 0.2 < writes / 5000 < 0.4  # ~30% writes


def test_zipf_rejects_bad_params():
    with pytest.raises(TraceError):
        next(zipf_ops(0, 10))
    with pytest.raises(TraceError):
        next(zipf_ops(10, -1))


def test_sequential_exact_arithmetic():
    ops = list(sequential_ops(64, 20, seed=0, stride=16))
    addrs = [a for a, _ in ops]
    # 64-byte span, stride 16: positions 0,16,32,48 then wrap
    assert addrs == [0, 16, 32, 48] * 5
    assert all(not w for _, w in ops)  # default read_ratio=1.0


def test_sequential_wraparound_never_straddles():
    for addr, _ in sequential_ops(100, 50, stride=24):
        assert addr + ACCESS_BYTES <= 100


def test_sequential_rejects_bad_stride():
    with pytest.raises(TraceError):
        next(sequential_ops(1 << 16, 10, stride=12))  # not 8-aligned
    with pytest.raises(TraceError):
        next(sequential_ops(8, 10, stride=16))  # stride > span
    with pytest.raises(TraceError):
        next(sequential_ops(1 << 16, 10, stride=0))


def test_pointer_chase_is_a_single_cycle():
    num_pages = 64
    ops = list(pointer_chase_ops(num_pages, 2 * num_pages, seed=11))
    pages = [a // PAGE_SIZE for a, _ in ops]
    # one full lap visits every page exactly once, then the walk repeats
    assert sorted(pages[:num_pages]) == list(range(num_pages))
    assert pages[num_pages:] == pages[:num_pages]
    assert all(not w for _, w in ops)  # chase is all reads


def test_pointer_chase_fixed_slot_per_page():
    slots = {}
    for addr, _ in pointer_chase_ops(32, 200, seed=5):
        page, off = divmod(addr, PAGE_SIZE)
        assert slots.setdefault(page, off) == off


def test_mixed_concatenates_phases_with_derived_seeds():
    phases = [
        {"kind": "sequential", "num_bytes": 1 << 12, "num_events": 50},
        {"kind": "zipf", "num_pages": 8, "num_events": 50, "offset": 1 << 16},
    ]
    ops = list(mixed_ops(phases, seed=7, base=1 << 20))
    expect = list(
        sequential_ops(1 << 12, 50, seed=7000, base=1 << 20)
    ) + list(zipf_ops(8, 50, seed=7001, base=(1 << 20) + (1 << 16)))
    assert ops == expect


def test_mixed_unknown_kind():
    with pytest.raises(TraceError, match="unknown phase kind"):
        list(mixed_ops([{"kind": "wat", "num_events": 1}]))


# -- scenario corpus ---------------------------------------------------------


def test_scenario_footprint_covers_every_address():
    for spec in SCENARIOS.values():
        span = spec.footprint_bytes
        for addr, _ in spec.ops():
            assert 0 <= addr and addr + ACCESS_BYTES <= span, spec.name


def test_unknown_scenario_kind_is_typed():
    with pytest.raises(TraceError):
        ScenarioSpec("x", "nope").ops()


# -- raw file round-trips ----------------------------------------------------


@pytest.mark.parametrize("fmt,ext", [("csv", "csv"), ("jsonl", "jsonl")])
def test_round_trip_identity(tmp_path, fmt, ext):
    ops = list(zipf_ops(16, 300, seed=2, read_ratio=0.6))
    path = tmp_path / f"t.{ext}"
    n = write_raw(str(path), ops, meta={"note": "round-trip"})
    assert n == 300
    back = list(read_raw(str(path)))
    assert [(a, bool(w)) for a, w in back] == ops
    assert ops_digest(back) == ops_digest(ops)


def test_round_trip_preserves_tid_arity(tmp_path):
    ops = [(4096, True, 3), (8192, False, 0), (16384, True)]
    for ext in ("csv", "jsonl"):
        path = tmp_path / f"tid.{ext}"
        write_raw(str(path), ops)
        back = list(read_raw(str(path)))
        assert [tuple(op) for op in back] == [
            (4096, True, 3), (8192, False, 0), (16384, True)
        ]


def test_round_trip_mixed_arity_exact(tmp_path):
    """A stream interleaving 2- and 3-tuples round-trips exactly in both
    formats: every op keeps its own arity, order, and values."""
    ops = [
        (0, False),
        (4096, True, 0),
        (8192, False, 7),
        (0x3000, True),
        (16384, False, 2),
        (2 * 4096, True),
    ]
    for ext in ("csv", "jsonl"):
        path = tmp_path / f"mixed.{ext}"
        n = write_raw(str(path), ops)
        assert n == len(ops)
        back = [tuple(op) for op in read_raw(str(path))]
        assert back == ops, ext
        assert ops_digest(back) == ops_digest(ops)


@pytest.mark.parametrize("ext", ["csv", "jsonl"])
@pytest.mark.parametrize("bad", [(), (4096,), (4096, 1, 2, 3)])
def test_write_raw_rejects_bad_arity(tmp_path, ext, bad):
    """write_raw must refuse arities read_raw could never round-trip --
    a typed error naming the offending op, not a silently truncated
    file."""
    path = tmp_path / f"bad.{ext}"
    with pytest.raises(TraceFormatError, match="op 1"):
        write_raw(str(path), [(0, False), bad], force=True)


def test_digest_is_format_independent(tmp_path):
    ops = list(sequential_ops(1 << 14, 200, seed=1))
    write_raw(str(tmp_path / "a.csv"), ops)
    write_raw(str(tmp_path / "a.jsonl"), ops)
    assert ops_digest(read_raw(str(tmp_path / "a.csv"))) == ops_digest(
        read_raw(str(tmp_path / "a.jsonl"))
    )


def test_write_raw_refuses_overwrite(tmp_path):
    path = tmp_path / "t.csv"
    write_raw(str(path), [(0, False)])
    with pytest.raises(TraceError, match="refusing to overwrite"):
        write_raw(str(path), [(8, True)])
    write_raw(str(path), [(8, True)], force=True)
    assert list(read_raw(str(path))) == [(8, True)]


def test_csv_accepts_hex_headers_and_comments(tmp_path):
    path = tmp_path / "ext.csv"
    path.write_text(
        "# repro.trace/v1\n"
        "# produced-by: some-other-tool\n"
        "addr,is_write\n"
        "0x1000,r\n"
        "4104,w\n"
        "\n"
        "0x2000,false,7\n"
    )
    assert list(read_raw(str(path))) == [
        (0x1000, False), (4104, True), (0x2000, False, 7)
    ]


@pytest.mark.parametrize(
    "body,match",
    [
        ("zzz,1\n", "bad address"),
        ("4096,maybe\n", "bad is_write"),
        ("4096\n", "expected 2 or 3"),
        ("1,2,3,4\n", "expected 2 or 3"),
        ("4096,1,xyz\n", "bad thread id"),
        ("-8,1\n", "negative address"),
        ("# repro.trace/v999\n4096,1\n", "unsupported trace schema"),
    ],
)
def test_csv_errors_are_typed_with_line_numbers(tmp_path, body, match):
    path = tmp_path / "bad.csv"
    path.write_text("# repro.trace/v1\n" + body if "schema" not in match else body)
    with pytest.raises(TraceFormatError, match=match) as exc:
        list(read_raw(str(path)))
    assert "bad.csv:" in str(exc.value)  # names path:line


@pytest.mark.parametrize(
    "body,match",
    [
        ('{"a": 4096, "w": 1}\nnot json\n', "invalid JSON"),
        ('[1, 2]\n', "expected a JSON object"),
        ('{"w": 1}\n', "need integer"),
        ('{"a": -4, "w": 1}\n', "negative address"),
        ('{"a": 4096, "w": 1, "tid": "x"}\n', "bad thread id"),
        ('{"a": 4096, "w": 1, "tid": null}\n', "bad thread id"),
        ('{"schema": "repro.trace/v999"}\n', "unsupported trace schema"),
    ],
)
def test_jsonl_errors_are_typed_with_line_numbers(tmp_path, body, match):
    path = tmp_path / "bad.jsonl"
    path.write_text(body)
    with pytest.raises(TraceFormatError, match=match) as exc:
        list(read_raw(str(path)))
    assert "bad.jsonl:" in str(exc.value)


def test_unknown_format_rejected(tmp_path):
    with pytest.raises(TraceError, match="unknown raw trace format"):
        list(read_raw(str(tmp_path / "t.csv"), fmt="xml"))
    with pytest.raises(TraceError, match="unknown raw trace format"):
        write_raw(str(tmp_path / "t.csv"), [], fmt="xml")


# -- fuzz corpus -------------------------------------------------------------


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_corpus_invariants(tmp_path, seed):
    """Every generator kind, 8 seeds: aligned in-span ops that survive an
    export/import round-trip bit-identically."""
    streams = {
        "zipf": (zipf_ops(48, 400, seed=seed, alpha=0.9), 48 * PAGE_SIZE),
        "sequential": (
            sequential_ops(1 << 15, 400, seed=seed, stride=32, read_ratio=0.8),
            1 << 15,
        ),
        "pointer_chase": (pointer_chase_ops(48, 400, seed=seed), 48 * PAGE_SIZE),
        "mixed": (
            mixed_ops(
                [
                    {"kind": "zipf", "num_pages": 16, "num_events": 200},
                    {"kind": "pointer_chase", "num_pages": 16,
                     "num_events": 200, "offset": 1 << 18},
                ],
                seed=seed,
            ),
            (1 << 18) + 16 * PAGE_SIZE,
        ),
    }
    for kind, (stream, span) in streams.items():
        ops = list(stream)
        assert len(ops) == 400, kind
        for addr, is_write in ops:
            assert addr % ACCESS_BYTES == 0, kind
            assert 0 <= addr and addr + ACCESS_BYTES <= span, kind
            assert isinstance(is_write, bool), kind
        path = tmp_path / f"{kind}_{seed}.jsonl"
        write_raw(str(path), ops)
        assert [(a, bool(w)) for a, w in read_raw(str(path))] == ops, kind
