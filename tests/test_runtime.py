"""Interpreter and object-store tests."""

import pytest

from repro.baselines import NativeMemory
from repro.errors import InterpreterError
from repro.ir import IRBuilder, verify
from repro.ir.types import F64, I64, INDEX, StructType
from repro.memsim.cost_model import CostModel
from repro.runtime import Interpreter, MemRefVal
from repro.runtime.objects import ObjectStore


def _run(build, data_init=None, local=1 << 24, cost=None):
    cost = cost or CostModel()
    b = IRBuilder()
    build(b)
    verify(b.module)
    interp = Interpreter(b.module, NativeMemory(cost, local), data_init)
    return interp.run()


# -- object store -------------------------------------------------------------


def test_memref_scalar_roundtrip():
    m = MemRefVal(1, F64, 4, "a")
    m.store(2, 3.5)
    assert m.load(2) == 3.5
    assert m.load(0) == 0.0


def test_memref_struct_fields():
    t = StructType("p", (("x", F64), ("y", I64)))
    m = MemRefVal(1, t, 4, "p")
    m.store(1, 2.0, field="x")
    m.store(1, 7, field="y")
    assert m.load(1, "x") == 2.0
    assert m.load(1, "y") == 7
    assert m.load(1) == (2.0, 7)


def test_memref_bounds_checked():
    m = MemRefVal(1, F64, 4)
    with pytest.raises(InterpreterError):
        m.load(4)
    with pytest.raises(InterpreterError):
        m.load(-1)
    with pytest.raises(InterpreterError):
        m.load(1.5)  # non-int index


def test_memref_byte_offsets():
    t = StructType("p", (("x", F64), ("y", I64)))
    m = MemRefVal(1, t, 4)
    assert m.byte_offset(0, "x") == (0, 8)
    assert m.byte_offset(1, "y") == (24, 8)
    assert m.byte_offset(2) == (32, 16)


def test_memref_fill_validates_length():
    m = MemRefVal(1, F64, 4)
    with pytest.raises(InterpreterError):
        m.fill([1.0, 2.0])


def test_object_store_lookup():
    store = ObjectStore()
    m = MemRefVal(1, F64, 4, "arr")
    store.register(m)
    assert store.by_id(1) is m
    assert store.by_name("arr") is m
    with pytest.raises(InterpreterError):
        store.by_id(2)


# -- interpreter semantics --------------------------------------------------------


def test_arith_and_return():
    def build(b):
        with b.func("main", result_types=[INDEX]):
            x = b.add(b.index(2), 3)
            y = b.mul(x, x)
            b.ret([y])

    assert _run(build).results == [25]


def test_integer_division_truncates_like_c():
    def build(b):
        with b.func("main", result_types=[I64, I64]):
            a = b.div(b.i64(-7), b.i64(2))
            r = b.rem(b.i64(-7), b.i64(2))
            b.ret([a, r])

    assert _run(build).results == [-3, -1]


def test_loop_reduction():
    def build(b):
        with b.func("main", result_types=[INDEX]):
            z = b.index(0)
            with b.for_(0, 10, iter_args=[z]) as loop:
                b.yield_([b.add(loop.args[0], loop.iv)])
            b.ret([loop.results[0]])

    assert _run(build).results == [45]


def test_if_branches():
    def build(b):
        with b.func("main", result_types=[INDEX]):
            c = b.cmp("lt", b.index(1), 2)
            h = b.if_(c, [INDEX])
            with h.then():
                b.yield_([b.index(10)])
            with h.else_():
                b.yield_([b.index(20)])
            b.ret([h.results[0]])

    assert _run(build).results == [10]


def test_while_countdown():
    def build(b):
        with b.func("main", result_types=[INDEX]):
            n = b.index(5)
            wh = b.while_([n])
            with wh.before() as (cur,):
                b.condition(b.cmp("gt", cur, 0), [cur])
            with wh.body() as (cur,):
                b.yield_([b.sub(cur, 1)])
            b.ret([wh.results[0]])

    assert _run(build).results == [0]


def test_memory_roundtrip_through_ir():
    def build(b):
        with b.func("main", result_types=[F64]):
            arr = b.alloc(F64, 8, "arr")
            with b.for_(0, 8) as loop:
                b.store(b.cast(loop.iv, F64), arr, loop.iv)
            z = b.f64(0.0)
            with b.for_(0, 8, iter_args=[z]) as loop:
                b.yield_([b.add(loop.args[0], b.load(arr, loop.iv))])
            b.ret([loop.results[0]])

    assert _run(build).results == [28.0]


def test_data_init_called_with_alloc_name():
    seen = {}

    def init(name, mrv):
        seen[name] = mrv.num_elems
        if name == "arr":
            mrv.fill([5.0] * 4)

    def build(b):
        with b.func("main", result_types=[F64]):
            arr = b.alloc(F64, 4, "arr")
            b.ret([b.load(arr, 2)])

    res = _run(build, init)
    assert res.results == [5.0]
    assert seen == {"arr": 4}


def test_function_calls_and_profiling():
    def build(b):
        with b.func("helper", [INDEX], [INDEX], ["x"]) as fn:
            b.ret([b.add(fn.args[0], 1)])
        with b.func("main", result_types=[INDEX]):
            r = b.call("helper", [b.index(41)], [INDEX]).results[0]
            b.ret([r])

    res = _run(build)
    assert res.results == [42]
    assert res.profiler.functions["helper"].calls == 1
    assert res.profiler.functions["main"].calls == 1


def test_virtual_time_charged_for_loads():
    def build(b):
        with b.func("main"):
            arr = b.alloc(F64, 4, "arr")
            b.load(arr, 0)

    res = _run(build)
    assert res.breakdown.get("dram", 0) == pytest.approx(100.0)


def test_touch_charges_streaming_bandwidth():
    def build(b):
        with b.func("main"):
            arr = b.alloc(F64, 1024, "arr")
            b.touch(arr, 0, 8192)

    res = _run(build)
    cost = CostModel()
    assert res.breakdown["dram_stream"] == pytest.approx(8192 / cost.dram_stream_bpns)


def test_parallel_loop_joins_max_time():
    def build(b):
        with b.func("main"):
            arr = b.alloc(F64, 64, "arr")
            with b.parallel(0, 64, num_threads=4) as loop:
                b.load(arr, loop.iv)

    par = _run(build)

    def build_seq(b):
        with b.func("main"):
            arr = b.alloc(F64, 64, "arr")
            with b.for_(0, 64) as loop:
                b.load(arr, loop.iv)

    seq = _run(build_seq)
    # 4 threads split the DRAM time roughly four ways
    assert par.elapsed_ns < seq.elapsed_ns * 0.5


def test_parallel_results_are_correct():
    def build(b):
        with b.func("main", result_types=[F64]):
            arr = b.alloc(F64, 32, "arr")
            with b.parallel(0, 32, num_threads=4) as loop:
                b.store(1.0, arr, loop.iv)
            z = b.f64(0.0)
            with b.for_(0, 32, iter_args=[z]) as red:
                b.yield_([b.add(red.args[0], b.load(arr, red.iv))])
            b.ret([red.results[0]])

    assert _run(build).results == [32.0]


def test_profiling_instrumentation_charges_time():
    def build(b):
        with b.func("main"):
            b.index(0)

    cost = CostModel()
    b1 = IRBuilder()
    build(b1)
    b1.module.attrs["profiling"] = True
    r1 = Interpreter(b1.module, NativeMemory(cost, 1 << 20)).run()
    assert r1.breakdown.get("profiling", 0) > 0


def test_offloaded_function_runs_on_far_node():
    cost = CostModel()

    def build(b, offload):
        with b.func("work", [INDEX], [INDEX], ["n"]) as fn:
            b.work(10_000)
            b.ret([fn.args[0]])
        if offload:
            b.module.get("work").attrs["offloaded"] = True
        with b.func("main", result_types=[INDEX]):
            r = b.call("work", [b.index(1)], [INDEX]).results[0]
            b.ret([r])

    b_local = IRBuilder()
    build(b_local, offload=False)
    local = Interpreter(b_local.module, NativeMemory(cost, 1 << 20)).run()
    b_far = IRBuilder()
    build(b_far, offload=True)
    far = Interpreter(b_far.module, NativeMemory(cost, 1 << 20)).run()
    assert far.results == local.results == [1]
    # far compute is slower and pays an RPC
    assert far.elapsed_ns > local.elapsed_ns + cost.rpc_ns * 0.9
    assert far.breakdown.get("rpc", 0) > 0


def test_missing_handler_is_reported():
    from repro.ir.core import Operation

    class WeirdOp(Operation):
        opname = "weird.op"

    b = IRBuilder()
    with b.func("main"):
        b.insert(WeirdOp())
    interp = Interpreter(b.module, NativeMemory(CostModel(), 1 << 20))
    with pytest.raises(InterpreterError):
        interp.run()
