"""Far-memory node / allocator tests."""

import pytest

from repro.errors import AllocationError
from repro.memsim.cost_model import CostModel
from repro.memsim.farnode import REMOTE_ALLOC_CHUNK, FarMemoryNode, RemoteAllocator
from repro.memsim.resources import SerialResource
from repro.memsim.clock import VirtualClock


def test_remote_allocator_bump():
    ra = RemoteAllocator(capacity=1000)
    a = ra.allocate(100)
    b = ra.allocate(100)
    assert b == a + 100
    assert ra.used == 200


def test_remote_allocator_exhaustion():
    ra = RemoteAllocator(capacity=100)
    ra.allocate(100)
    with pytest.raises(AllocationError):
        ra.allocate(1)


def test_local_allocator_buffers_round_trips(cost):
    node = FarMemoryNode(cost)
    for _ in range(100):
        node.allocate(1024)
    # 100 small allocations are carved from one remote chunk
    assert node.local_allocator.round_trips == 1


def test_local_allocator_large_allocation(cost):
    node = FarMemoryNode(cost)
    addr = node.allocate(2 * REMOTE_ALLOC_CHUNK)
    assert addr > 0
    assert node.used_bytes >= 2 * REMOTE_ALLOC_CHUNK


def test_far_compute_slowdown(cost):
    node = FarMemoryNode(cost)
    assert node.compute_ns(100.0) == pytest.approx(100.0 * cost.far_cpu_slowdown)


def test_serial_resource_serializes():
    lock = SerialResource()
    c1 = VirtualClock()
    c2 = VirtualClock()
    lock.acquire(c1, 100.0)
    lock.acquire(c2, 100.0)  # c2 starts at 0 but must wait until 100
    assert c2.now == pytest.approx(200.0)
    assert lock.contended_ns == pytest.approx(100.0)
    assert lock.acquisitions == 2


def test_serial_resource_no_contention_when_spaced():
    lock = SerialResource()
    c = VirtualClock()
    lock.acquire(c, 50.0)
    c.advance(1000.0)
    lock.acquire(c, 50.0)
    assert lock.contended_ns == 0.0
