"""Section-planner and controller tests (the Fig. 1 iterative flow)."""

import pytest

from repro.baselines import FastSwap, NativeMemory
from repro.cache.config import Structure
from repro.core import MiraController, MiraPlan, compile_program, run_on_baseline, run_plan
from repro.core.section_planner import plan_sections
from repro.memsim.cost_model import CostModel
from repro.workloads import make_graph_workload


@pytest.fixture(scope="module")
def graph_wl():
    return make_graph_workload(num_edges=2000, num_nodes=600)


@pytest.fixture(scope="module")
def swap_profile(graph_wl):
    cost = CostModel()
    local = graph_wl.footprint_bytes() // 3
    src = graph_wl.build_module()
    compiled = compile_program(src, MiraPlan.swap_only(), cost, instrument=True)
    result = run_plan(compiled, cost, local, graph_wl.data_init)
    return src, result, cost, local


def test_planner_separates_edge_and_node_sections(swap_profile):
    src, result, cost, local = swap_profile
    plan = plan_sections(src, cost, local, result.profiler, fraction=0.1)
    by_objs = {tuple(sp.object_names): sp for sp in plan.sections}
    assert ("edges",) in by_objs
    assert ("nodes",) in by_objs
    edges = by_objs[("edges",)]
    nodes = by_objs[("nodes",)]
    # sequential edges: direct-mapped, big lines, small section
    assert edges.config.structure is Structure.DIRECT
    assert edges.config.line_size >= 1024
    # indirect nodes: set-associative, small lines, most of the memory
    assert nodes.config.structure is Structure.SET_ASSOCIATIVE
    assert nodes.config.line_size <= 128
    assert nodes.config.size_bytes > edges.config.size_bytes


def test_planner_respects_budget(swap_profile):
    src, result, cost, local = swap_profile
    plan = plan_sections(src, cost, local, result.profiler, fraction=0.1)
    assert plan.total_section_bytes() <= local


def test_planner_converts_selected_sites(swap_profile):
    src, result, cost, local = swap_profile
    plan = plan_sections(src, cost, local, result.profiler, fraction=0.1)
    assert set(plan.converted_sites) == {"edges", "nodes"}


def test_planner_empty_profile_gives_swap_only(swap_profile):
    from repro.memsim.clock import VirtualClock
    from repro.runtime.profiler import Profiler

    src, _, cost, local = swap_profile
    empty = Profiler(VirtualClock())
    plan = plan_sections(src, cost, local, empty, fraction=0.1)
    assert not plan.sections


def test_plan_without_options_disables_passes(swap_profile):
    src, result, cost, local = swap_profile
    plan = plan_sections(src, cost, local, result.profiler, fraction=0.1)
    stripped = plan.without_options("prefetch", "evict")
    assert "prefetch" not in stripped.options
    compiled = compile_program(src, stripped, cost)
    from repro.ir.dialects import rmem

    assert not [op for op in compiled.walk() if isinstance(op, rmem.PrefetchOp)]


def test_controller_improves_over_swap_and_beats_fastswap(graph_wl):
    cost = CostModel()
    local = graph_wl.footprint_bytes() // 4
    native = run_on_baseline(
        graph_wl.build_module(),
        NativeMemory(cost, 4 * graph_wl.footprint_bytes()),
        graph_wl.data_init,
    )
    fast = run_on_baseline(
        graph_wl.build_module(), FastSwap(cost, local), graph_wl.data_init
    )
    controller = MiraController(
        graph_wl.build_module, cost, local, data_init=graph_wl.data_init,
        max_iterations=2,
    )
    program = controller.optimize()
    assert program.best_ns <= program.swap_baseline_ns
    assert program.best_ns < fast.elapsed_ns
    # the compiled program still computes the right answer
    final = run_plan(program.module, cost, local, graph_wl.data_init)
    graph_wl.verify_results(final.results)
    # iteration history starts with the swap run and records acceptance
    assert program.history[0].iteration == 0
    assert program.history[0].accepted


def test_controller_rolls_back_regressions(graph_wl):
    """With enough local memory, swap is already near-native; if a
    section plan regresses, the controller must keep the best (swap or
    better) configuration."""
    cost = CostModel()
    local = graph_wl.footprint_bytes()  # 100% local memory
    controller = MiraController(
        graph_wl.build_module, cost, local, data_init=graph_wl.data_init,
        max_iterations=2,
    )
    program = controller.optimize()
    best = min(h.elapsed_ns for h in program.history if h.elapsed_ns != float("inf"))
    assert program.best_ns == pytest.approx(best)


def test_controller_scope_reduction_stats(graph_wl):
    cost = CostModel()
    local = graph_wl.footprint_bytes() // 4
    program = MiraController(
        graph_wl.build_module, cost, local, data_init=graph_wl.data_init,
        max_iterations=1,
    ).optimize()
    assert program.functions_total >= 1
    assert program.alloc_sites_total == 2
    assert program.alloc_sites_selected <= program.alloc_sites_total


def test_controller_with_size_sampling(graph_wl):
    cost = CostModel()
    local = graph_wl.footprint_bytes() // 4
    program = MiraController(
        graph_wl.build_module, cost, local, data_init=graph_wl.data_init,
        max_iterations=1, sample_sizes=True,
    ).optimize()
    final = run_plan(program.module, cost, local, graph_wl.data_init)
    graph_wl.verify_results(final.results)
