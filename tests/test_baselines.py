"""Baseline-system tests: native, FastSwap, Leap (majority prefetcher),
AIFM (metadata + dereference overheads)."""

import pytest

from repro.baselines import AIFM, FastSwap, Leap, NativeMemory
from repro.baselines.leap import MajorityTrendPrefetcher, _boyer_moore
from repro.errors import AllocationError
from repro.memsim.address import PAGE_SIZE
from repro.memsim.cost_model import CostModel


def test_native_access_is_free(cost):
    sys_ = NativeMemory(cost, 1 << 20)
    obj = sys_.allocate(4096, name="a")
    sys_.access(obj.obj_id, 0, 8, False)
    assert sys_.clock.now == 0.0


def test_fastswap_page_amplification(cost):
    """A 1-byte access costs a full page fetch."""
    sys_ = FastSwap(cost, 1 << 20)
    obj = sys_.allocate(4096, name="a")
    sys_.access(obj.obj_id, 0, 1, False)
    assert sys_.network.stats.bytes_read == PAGE_SIZE


def test_fastswap_sequential_amortizes(cost):
    sys_ = FastSwap(cost, 1 << 20)
    obj = sys_.allocate(64 * 1024, name="a")
    for i in range(0, 8192, 8):
        sys_.access(obj.obj_id, i, 8, False)
    # 1024 accesses but only 2 page faults
    assert sys_.swap.stats.misses == 2


def test_leap_slower_fault_path_than_fastswap(cost):
    fs = FastSwap(cost, 1 << 20)
    lp = Leap(cost, 1 << 20)
    o1 = fs.allocate(4096, name="a")
    o2 = lp.allocate(4096, name="a")
    fs.access(o1.obj_id, 0, 8, False)
    lp.access(o2.obj_id, 0, 8, False)
    assert lp.clock.now > fs.clock.now


def test_boyer_moore_majority():
    assert _boyer_moore([1, 1, 2, 1, 3, 1, 1]) == 1
    assert _boyer_moore([1]) == 1
    assert _boyer_moore([]) is None


def test_majority_prefetcher_detects_stride():
    pf = MajorityTrendPrefetcher()
    for p in range(100, 120):
        pf.record(p)
    assert pf.majority_stride() == 1
    plan = pf.plan(120)
    assert plan and plan[0] == 121


def test_majority_prefetcher_detects_negative_stride():
    pf = MajorityTrendPrefetcher()
    for p in range(200, 180, -1):
        pf.record(p)
    assert pf.majority_stride() == -1


def test_majority_prefetcher_random_gives_nothing():
    pf = MajorityTrendPrefetcher()
    for p in [5, 100, 7, 93, 12, 77, 3, 55, 21, 88, 9, 64]:
        pf.record(p)
    assert pf.majority_stride() is None
    assert pf.plan(64) == []


def test_majority_prefetcher_interleaved_pattern_defeated():
    """The paper's key Leap observation (Fig. 15): an interleaved
    sequential+random pattern has no page-stride majority."""
    import random

    rng = random.Random(1)
    pf = MajorityTrendPrefetcher()
    seq = 1000
    for _ in range(16):
        pf.record(seq)  # sequential component
        seq += 1
        pf.record(rng.randrange(0, 500))  # random component
    stride = pf.majority_stride()
    assert stride is None


def test_leap_prefetches_sequential_scan(cost):
    lp = Leap(cost, 1 << 20)
    obj = lp.allocate(256 * 1024, name="a")
    for i in range(0, 256 * 1024, 64):
        lp.access(obj.obj_id, i, 8, False)
    # most pages arrived via prefetch: far fewer demand faults than pages
    total_pages = 64
    demand = lp.swap.stats.misses - lp.swap.stats.prefetch_hits
    assert lp.swap.stats.prefetches_issued > 0
    assert demand < total_pages


def test_aifm_deref_overhead_on_every_access(cost):
    sys_ = AIFM(cost, 1 << 20)
    obj = sys_.allocate(4096, elem_size=8, name="a")
    sys_.access(obj.obj_id, 0, 8, False)
    t1 = sys_.clock.now
    sys_.access(obj.obj_id, 0, 8, False)  # hit still pays the deref
    assert sys_.clock.now - t1 == pytest.approx(cost.aifm_deref_ns)


def test_aifm_metadata_reduces_usable_memory(cost):
    sys_ = AIFM(cost, 1 << 20)
    sys_.allocate(64 * 1024, elem_size=8, name="a", attrs={"aifm_obj_bytes": 8})
    assert sys_.metadata_bytes() == (64 * 1024 // 8) * cost.aifm_object_metadata_bytes
    assert sys_.local_bytes_available() < sys_.local_mem_bytes


def test_aifm_fails_when_metadata_exceeds_memory(cost):
    sys_ = AIFM(cost, 128 * 1024)
    with pytest.raises(AllocationError):
        # 64K objects x 16 B metadata = 1 MB > 128 KB local
        sys_.allocate(512 * 1024, elem_size=8, name="a", attrs={"aifm_obj_bytes": 8})
    assert sys_.failed


def test_aifm_fetches_whole_object(cost):
    """Dereferencing one byte moves the entire remotable object."""
    sys_ = AIFM(cost, 1 << 20)
    obj = sys_.allocate(8192, elem_size=8, name="a", attrs={"aifm_obj_bytes": 2048})
    sys_.access(obj.obj_id, 0, 1, False)
    assert sys_.network.stats.bytes_read == 2048


def test_aifm_eviction_lru(cost):
    sys_ = AIFM(cost, 64 * 1024)
    obj = sys_.allocate(
        256 * 1024, elem_size=8, name="a", attrs={"aifm_obj_bytes": 4096}
    )
    for chunk in range(32):
        sys_.access(obj.obj_id, chunk * 4096, 8, True)
    assert sys_.swap_stats.evictions > 0
    assert sys_.swap_stats.writebacks > 0


def test_free_releases_aifm_residency(cost):
    sys_ = AIFM(cost, 1 << 20)
    obj = sys_.allocate(4096, elem_size=8, name="a")
    sys_.access(obj.obj_id, 0, 8, False)
    sys_.free(obj.obj_id)
    assert sys_._resident_bytes == 0
