"""Cost model unit tests."""

import pytest

from repro.errors import ConfigError
from repro.memsim.cost_model import CostModel


def test_transfer_scales_with_bytes(cost):
    assert cost.transfer_ns(0) == 0.0
    assert cost.transfer_ns(625) == pytest.approx(100.0)


def test_transfer_negative_rejected(cost):
    with pytest.raises(ConfigError):
        cost.transfer_ns(-1)


def test_one_sided_adds_rtt(cost):
    assert cost.one_sided_ns(0) == cost.net_rtt_ns
    assert cost.one_sided_ns(6250) == pytest.approx(cost.net_rtt_ns + 1000.0)


def test_two_sided_more_expensive_than_one_sided(cost):
    for nbytes in (0, 64, 4096):
        assert cost.two_sided_ns(nbytes) > cost.one_sided_ns(nbytes)


def test_two_sided_cheaper_for_selective_fetch(cost):
    """The section 4.7 trade-off: fetching 64 selected bytes two-sided
    beats fetching the whole 4 KB structure one-sided."""
    assert cost.two_sided_ns(64) < cost.one_sided_ns(4096)


def test_page_fetch_includes_fault_path(cost):
    base = cost.page_fetch_ns(4096)
    assert base > cost.one_sided_ns(4096)
    assert cost.page_fetch_ns(4096, extra_fault_ns=1000.0) == pytest.approx(
        base + 1000.0
    )


def test_hit_overhead_ordering(cost):
    """Lookup cost: direct < set-associative < fully-associative."""
    assert (
        cost.hit_overhead_ns("direct")
        < cost.hit_overhead_ns("set_associative")
        < cost.hit_overhead_ns("fully_associative")
    )


def test_hit_overhead_unknown_structure(cost):
    with pytest.raises(ConfigError):
        cost.hit_overhead_ns("weird")


def test_with_overrides(cost):
    c2 = cost.with_overrides(net_rtt_ns=9999.0)
    assert c2.net_rtt_ns == 9999.0
    assert cost.net_rtt_ns != 9999.0
    assert c2.dram_access_ns == cost.dram_access_ns


def test_invalid_models_rejected():
    with pytest.raises(ConfigError):
        CostModel(net_bandwidth_bpns=0)
    with pytest.raises(ConfigError):
        CostModel(dram_access_ns=-1)
