"""Compiler-pass tests: conversion, prefetch, hints, batching, read/write
optimization, elision, offload."""

import pytest

from repro.analysis.alias import AliasAnalysis
from repro.ir import IRBuilder, print_module, verify
from repro.ir.dialects import memref, remotable, rmem, scf
from repro.ir.types import F64, I64, INDEX, MemRefType, StructType
from repro.memsim.cost_model import CostModel
from repro.transforms import (
    apply_offload,
    apply_readwrite_optimization,
    combine_prefetches,
    convert_to_remote,
    elide_dereferences,
    fuse_adjacent_loops,
    insert_eviction_hints,
    insert_prefetches,
)
from repro.transforms.prefetch import estimate_iteration_ns, prefetch_distance


def _graph_module(num_edges=128, num_nodes=16):
    b = IRBuilder()
    edge_t = StructType("edge", (("src", I64), ("w", F64)))
    with b.func("main", result_types=[F64]):
        edges = b.alloc(edge_t, num_edges, "edges")
        nodes = b.alloc(F64, num_nodes, "nodes")
        z = b.f64(0.0)
        with b.for_(0, num_edges, iter_args=[z]) as loop:
            s = b.cast(b.load(edges, loop.iv, field="src"), INDEX)
            v = b.load(nodes, s)
            b.store(b.add(v, 1.0), nodes, s)
            b.yield_([b.add(loop.args[0], b.load(edges, loop.iv, field="w"))])
        b.ret([loop.results[0]])
    verify(b.module)
    return b.module


def _ops(module, cls):
    return [op for op in module.walk() if isinstance(op, cls)]


# -- convert_to_remote -------------------------------------------------------------


def test_convert_retypes_allocs_and_accesses():
    m = _graph_module()
    converted = convert_to_remote(m, ["edges", "nodes"])
    assert set(converted) == {"edges", "nodes"}
    assert len(_ops(m, remotable.RAllocOp)) == 2
    assert not _ops(m, memref.AllocOp)
    assert len(_ops(m, rmem.RLoadOp)) == 3
    assert len(_ops(m, rmem.RStoreOp)) == 1
    verify(m)


def test_convert_partial_selection():
    m = _graph_module()
    convert_to_remote(m, ["edges"])
    assert len(_ops(m, remotable.RAllocOp)) == 1
    assert len(_ops(m, memref.AllocOp)) == 1
    # nodes accesses stay local
    assert len(_ops(m, memref.LoadOp)) == 1
    assert len(_ops(m, memref.StoreOp)) == 1
    verify(m)


def test_convert_unknown_name_is_noop():
    m = _graph_module()
    assert convert_to_remote(m, ["ghost"]) == []
    assert not _ops(m, remotable.RAllocOp)


def test_convert_widens_aliased_selection():
    b = IRBuilder()
    with b.func("main"):
        a = b.alloc(F64, 8, "a")
        c = b.alloc(F64, 8, "c")
        picked = b.select(b.true(), a, c)
        b.load(picked, 0)
    converted = convert_to_remote(b.module, ["a"])
    # c aliases the same pointer, so it must be converted too (soundness)
    assert set(converted) == {"a", "c"}
    verify(b.module)


def test_convert_marks_remotable_functions():
    b = IRBuilder()
    ref = MemRefType(F64)
    with b.func("reader", [ref], [F64], ["a"]) as fn:
        b.ret([b.load(fn.args[0], 0)])
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, 8, "arr")
        b.ret([b.call("reader", [arr], [F64]).results[0]])
    convert_to_remote(b.module, ["arr"])
    assert b.module.get("reader").is_remotable
    verify(b.module)


# -- prefetch -----------------------------------------------------------------------


def test_prefetch_inserted_for_sequential_and_indirect():
    m = _graph_module()
    convert_to_remote(m, ["edges", "nodes"])
    n = insert_prefetches(m, CostModel())
    assert n >= 2
    prefetches = _ops(m, rmem.PrefetchOp)
    assert prefetches
    # the chained stage-1 load exists and is marked
    staged = [
        op for op in _ops(m, rmem.RLoadOp) if op.attrs.get("prefetch_stage")
    ]
    assert staged
    verify(m)


def test_prefetch_distance_scales_inversely_with_iteration_time():
    cost = CostModel()
    m1 = _graph_module()
    loop = [op for op in m1.walk() if isinstance(op, scf.ForOp)][0]
    d_small = prefetch_distance(loop, cost)
    slow_cost = cost.with_overrides(dram_access_ns=10_000.0)
    d_slow = prefetch_distance(loop, slow_cost)
    assert d_slow <= d_small
    assert estimate_iteration_ns(loop, slow_cost) > estimate_iteration_ns(loop, cost)


def test_prefetch_skips_local_objects():
    m = _graph_module()
    convert_to_remote(m, ["nodes"])  # edges stay local
    insert_prefetches(m, CostModel())
    for p in _ops(m, rmem.PrefetchOp):
        assert p.ref.type.remote


# -- eviction hints ------------------------------------------------------------------


def test_eviction_hints_for_streaming_and_last_access():
    m = _graph_module()
    convert_to_remote(m, ["edges", "nodes"])
    n = insert_eviction_hints(m)
    assert n >= 1
    hints = _ops(m, rmem.EvictHintOp)
    assert any(h.mode == "trailing" for h in hints)
    # whole-object hint after the loop (last access in function)
    assert any(h.mode == "exact" for h in hints)
    assert _ops(m, rmem.FlushOp)
    verify(m)


# -- batching -----------------------------------------------------------------------


def _amm_module():
    b = IRBuilder()
    with b.func("main", result_types=[F64, F64]):
        arr = b.alloc(F64, 64, "arr")
        z1 = b.f64(0.0)
        with b.for_(0, 64, iter_args=[z1]) as l1:
            b.yield_([b.add(l1.args[0], b.load(arr, l1.iv))])
        big = b.f64(-1e30)
        with b.for_(0, 64, iter_args=[big]) as l2:
            b.yield_([b.max(l2.args[0], b.load(arr, l2.iv))])
        b.ret([l1.results[0], l2.results[0]])
    verify(b.module)
    return b.module


def test_fuse_adjacent_loops_preserves_semantics():
    from repro.baselines import NativeMemory
    from repro.runtime import Interpreter

    m = _amm_module()

    def init(name, mrv):
        mrv.fill([float(i) for i in range(64)])

    before = Interpreter(m.clone(), NativeMemory(CostModel(), 1 << 20), init).run()
    fused = fuse_adjacent_loops(m)
    assert fused == 1
    verify(m)
    loops = [op for op in m.get("main").walk() if isinstance(op, scf.ForOp)]
    assert len(loops) == 1
    after = Interpreter(m, NativeMemory(CostModel(), 1 << 20), init).run()
    assert after.results == before.results


def test_combine_adjacent_prefetch_runs():
    b = IRBuilder()
    with b.func("main"):
        a = b.ralloc(F64, 64, "a")
        c = b.ralloc(F64, 64, "c")
        with b.for_(0, 64) as loop:
            b.prefetch(a, loop.iv, count=2)
            b.prefetch(c, loop.iv, count=2)
            b.load(a, loop.iv)
            b.prefetch(c, loop.iv, count=2)  # separated: stays alone
            b.load(c, loop.iv)
    created = combine_prefetches(b.module)
    assert created == 1
    batches = _ops(b.module, rmem.BatchPrefetchOp)
    assert len(batches) == 1
    assert len(batches[0].counts) == 2
    assert len(_ops(b.module, rmem.PrefetchOp)) == 1
    verify(b.module)


# -- read/write optimization -----------------------------------------------------------


def test_readonly_loop_gets_discard():
    b = IRBuilder()
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, 64, "arr")
        z = b.f64(0.0)
        with b.for_(0, 64, iter_args=[z]) as loop:
            b.yield_([b.add(loop.args[0], b.load(arr, loop.iv))])
        b.ret([loop.results[0]])
    convert_to_remote(b.module, ["arr"])
    flags = apply_readwrite_optimization(b.module)
    assert flags["arr"]["discard_after"]
    assert _ops(b.module, rmem.DiscardOp)
    verify(b.module)


def test_writeonly_loop_gets_no_fetch_flag():
    b = IRBuilder()
    with b.func("main"):
        arr = b.alloc(F64, 64, "out")
        with b.for_(0, 64) as loop:
            b.store(1.0, arr, loop.iv)
    convert_to_remote(b.module, ["out"])
    flags = apply_readwrite_optimization(b.module)
    assert flags["out"]["write_no_fetch"]


def test_no_discard_when_object_used_later():
    b = IRBuilder()
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, 64, "arr")
        z = b.f64(0.0)
        with b.for_(0, 64, iter_args=[z]) as loop:
            b.yield_([b.add(loop.args[0], b.load(arr, loop.iv))])
        v = b.load(arr, 0)  # later use
        b.ret([b.add(loop.results[0], v)])
    convert_to_remote(b.module, ["arr"])
    flags = apply_readwrite_optimization(b.module)
    assert not flags["arr"]["discard_after"]


# -- dereference elision -----------------------------------------------------------------


def test_elision_requires_prefetch():
    m = _graph_module()
    convert_to_remote(m, ["edges", "nodes"])
    elided = elide_dereferences(m)  # no prefetch pass ran
    assert elided == []


def test_elision_marks_sequential_prefetched_accesses():
    m = _graph_module()
    convert_to_remote(m, ["edges", "nodes"])
    insert_prefetches(m, CostModel())
    elided = elide_dereferences(m)
    assert "edges" in elided
    native_loads = [
        op
        for op in _ops(m, rmem.RLoadOp)
        if op.attrs.get("native") and not op.attrs.get("prefetch_stage")
    ]
    assert native_loads


def test_same_element_second_access_elided():
    m = _graph_module()
    convert_to_remote(m, ["edges", "nodes"])
    insert_prefetches(m, CostModel())
    elide_dereferences(m)
    stores = _ops(m, rmem.RStoreOp)
    # nodes[s] store follows nodes[s] load in the same iteration
    assert any(s.attrs.get("native") for s in stores)


# -- offload ---------------------------------------------------------------------------


def _offload_module():
    b = IRBuilder()
    ref = MemRefType(F64)
    with b.func("reduce", [ref], [F64], ["a"]) as fn:
        z = b.f64(0.0)
        with b.for_(0, 64, iter_args=[z]) as loop:
            b.yield_([b.add(loop.args[0], b.load(fn.args[0], loop.iv))])
        b.ret([loop.results[0]])
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, 64, "arr")
        b.ret([b.call("reduce", [arr], [F64]).results[0]])
    verify(b.module)
    convert_to_remote(b.module, ["arr"])
    return b.module


def test_explicit_offload_marks_function():
    m = _offload_module()
    decisions = apply_offload(m, CostModel(), functions=["reduce"])
    assert decisions[0].offload
    assert m.get("reduce").is_offloaded


def test_offload_rejects_non_candidate():
    b = IRBuilder()
    ref = MemRefType(F64)  # local memref parameter: not remote-capable
    with b.func("f", [ref], [], ["a"]) as fn:
        b.store(1.0, fn.args[0], 0)
    with b.func("main"):
        arr = b.alloc(F64, 8, "arr")
        b.call("f", [arr])
    decisions = apply_offload(b.module, CostModel(), functions=["f"])
    assert not decisions[0].offload
    assert not b.module.get("f").is_offloaded
