"""Fault-plan, injector, reliability-layer, and degradation tests."""

import random

import pytest

from repro.cache.config import SectionConfig
from repro.cache.manager import CacheManager
from repro.errors import ConfigError
from repro.faults import (
    CircuitBreaker,
    FarWindow,
    FaultInjector,
    FaultPlan,
    LinkWindow,
)
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.farnode import FarMemoryNode
from repro.memsim.network import Network
from repro.obs import MetricsRegistry


# -- plan validation ---------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"loss_prob": -0.1},
        {"loss_prob": 1.0},
        {"timeout_prob": 1.5},
        {"loss_prob": 0.6, "timeout_prob": 0.4},  # sum reaches 1
        {"timeout_ns": 0.0},
        {"max_retries": -1},
        {"backoff_base_ns": -1.0},
        {"backoff_factor": 0.5},
        {"breaker_threshold": 0},
        {"breaker_cooldown_ns": -1.0},
        {"link_windows": (LinkWindow(100.0, 100.0),)},
        {"link_windows": (LinkWindow(0.0, 100.0, bw_scale=0.5),)},
        {"far_windows": (FarWindow(0.0, 100.0, slowdown=0.9),)},
    ],
)
def test_plan_rejects_bad_config(kwargs):
    with pytest.raises(ConfigError):
        FaultPlan(**kwargs)


def test_plan_defaults_are_healthy():
    plan = FaultPlan()
    assert plan.fault_prob == 0.0
    assert plan.link_windows == ()


def test_backoff_grows_exponentially():
    plan = FaultPlan(backoff_base_ns=100.0, backoff_factor=2.0)
    assert plan.backoff_ns(1) == 100.0
    assert plan.backoff_ns(2) == 200.0
    assert plan.backoff_ns(3) == 400.0


def test_window_active_boundaries():
    w = LinkWindow(100.0, 200.0)
    assert not w.active(99.0)
    assert w.active(100.0)  # start inclusive
    assert w.active(199.9)
    assert not w.active(200.0)  # end exclusive


def test_generate_is_deterministic():
    a = FaultPlan.generate(7, intensity="medium")
    b = FaultPlan.generate(7, intensity="medium")
    assert a == b
    assert a != FaultPlan.generate(8, intensity="medium")
    assert len(a.link_windows) == 2 and len(a.far_windows) == 2


def test_generate_rejects_unknown_intensity():
    with pytest.raises(ConfigError):
        FaultPlan.generate(1, intensity="apocalyptic")


def test_with_overrides():
    plan = FaultPlan.generate(3, intensity="light")
    tweaked = plan.with_overrides(max_retries=9)
    assert tweaked.max_retries == 9
    assert tweaked.link_windows == plan.link_windows


# -- injector ----------------------------------------------------------------


def test_roll_is_deterministic_per_plan():
    plan = FaultPlan(seed=42, loss_prob=0.3, timeout_prob=0.2)
    inj1, inj2 = FaultInjector(plan), FaultInjector(plan)
    rolls1 = [inj1.roll() for _ in range(200)]
    rolls2 = [inj2.roll() for _ in range(200)]
    assert rolls1 == rolls2
    assert set(rolls1) == {None, "loss", "timeout"}


def test_roll_tallies_both_kinds():
    inj = FaultInjector(FaultPlan(seed=1, loss_prob=0.3, timeout_prob=0.3))
    rolls = [inj.roll() for _ in range(500)]
    assert inj.stats.losses == rolls.count("loss") > 0
    assert inj.stats.timeouts == rolls.count("timeout") > 0
    assert rolls.count(None) > 0


def test_zero_prob_plan_consumes_no_rng():
    # windows-only plans must not perturb the RNG stream: the first real
    # draw after many no-op rolls still matches a virgin generator
    inj = FaultInjector(FaultPlan(seed=9))
    for _ in range(50):
        assert inj.roll() is None
    assert inj.rng.random() == random.Random(9).random()


def test_link_and_far_scales_multiply():
    plan = FaultPlan(
        link_windows=(
            LinkWindow(0.0, 100.0, bw_scale=2.0, rtt_scale=3.0),
            LinkWindow(50.0, 150.0, bw_scale=4.0),
        ),
        far_windows=(FarWindow(0.0, 100.0, slowdown=5.0),),
    )
    inj = FaultInjector(plan)
    assert inj.link_scales(75.0) == (8.0, 3.0)  # both windows active
    assert inj.link_scales(125.0) == (4.0, 1.0)
    assert inj.link_scales(500.0) == (1.0, 1.0)
    assert inj.far_scale(50.0) == 5.0
    assert inj.far_scale(200.0) == 1.0


def test_stats_publish_to_registry():
    inj = FaultInjector(FaultPlan(seed=1, loss_prob=0.5))
    while inj.stats.losses == 0:
        inj.roll()
    reg = MetricsRegistry()
    inj.stats.publish(reg)
    assert reg.gauge("fault.losses").value == inj.stats.losses


# -- circuit breaker ---------------------------------------------------------


def test_breaker_trips_at_threshold():
    br = CircuitBreaker(threshold=3, cooldown_ns=1000.0)
    assert not br.record_failure(10.0)
    assert not br.record_failure(20.0)
    assert br.record_failure(30.0)  # third consecutive failure trips it
    assert br.trips == 1
    assert not br.allows(31.0)  # open: fail fast


def test_breaker_success_resets_streak():
    br = CircuitBreaker(threshold=2, cooldown_ns=1000.0)
    br.record_failure(1.0)
    br.record_success()
    assert not br.record_failure(2.0)  # streak restarted


def test_breaker_half_open_probe():
    br = CircuitBreaker(threshold=1, cooldown_ns=1000.0)
    assert br.record_failure(0.0)
    assert not br.allows(500.0)  # still cooling down
    assert br.allows(1000.0)  # half-open: one probe allowed
    br.record_success()
    assert br.allows(1001.0)  # probe succeeded: closed again


def test_breaker_half_open_failure_reopens():
    br = CircuitBreaker(threshold=5, cooldown_ns=1000.0)
    for _ in range(4):
        br.record_failure(0.0)
    br.record_failure(0.0)
    assert br.allows(1000.0)  # half-open
    assert br.record_failure(1000.0)  # one failure re-trips immediately
    assert br.trips == 2
    assert not br.allows(1500.0)


# -- network reliability layer -----------------------------------------------


def _faulty_network(plan):
    cost = CostModel()
    clock = VirtualClock()
    net = Network(cost, clock)
    net.install_faults(FaultInjector(plan))
    return net, clock, cost


def test_retries_charge_timeout_and_backoff():
    plan = FaultPlan(seed=5, loss_prob=0.6, timeout_prob=0.3, breaker_threshold=10_000)
    net, clock, cost = _faulty_network(plan)
    healthy = cost.one_sided_ns(4096)
    total = sum(net.read(4096) for _ in range(50))
    st = net.faults.stats
    assert st.retries > 0
    assert total > 50 * healthy  # the penalties are in the return values
    bd = clock.breakdown()
    assert bd["net_timeout"] == pytest.approx(st.timeout_wait_ns)
    assert bd["net_backoff"] == pytest.approx(st.backoff_ns)
    assert st.timeout_wait_ns >= (st.retries + st.giveups) * plan.timeout_ns


def test_exhausted_retries_give_up_but_complete():
    plan = FaultPlan(seed=3, loss_prob=0.8, max_retries=1, breaker_threshold=10_000)
    net, _, _ = _faulty_network(plan)
    before = net.stats.bytes_read
    for _ in range(50):
        net.read(4096)
    assert net.faults.stats.giveups > 0
    # completion is forced: every op still moved its bytes
    assert net.stats.bytes_read == before + 50 * 4096


def test_breaker_trip_reports_upward_and_fails_fast():
    plan = FaultPlan(
        seed=2,
        loss_prob=0.9,
        breaker_threshold=2,
        breaker_cooldown_ns=1e15,  # never cools down within the test
    )
    net, _, _ = _faulty_network(plan)
    seen = []
    net.on_persistent_failure = seen.append
    for _ in range(30):
        net.read(4096)
    st = net.faults.stats
    assert st.breaker_trips >= 1
    assert seen and seen[0] == "read"
    assert st.fast_fails > 0  # ops short-circuited while open


def test_link_window_scales_sync_latency():
    plan = FaultPlan(link_windows=(LinkWindow(0.0, 1e9, bw_scale=2.0, rtt_scale=2.0),))
    net, clock, cost = _faulty_network(plan)
    ns = net.read(4096)
    assert ns == pytest.approx(2.0 * cost.one_sided_ns(4096))
    assert clock.now == pytest.approx(ns)


def test_async_fault_lands_on_completion_time():
    plan = FaultPlan(seed=1, loss_prob=0.9, breaker_threshold=10_000)
    net, clock, cost = _faulty_network(plan)
    penalty = plan.timeout_ns + plan.backoff_ns(1)
    ready = net.read_async(4096)
    # seed 1's first roll faults: the issuing thread is not stalled, the
    # penalty lands on the completion time instead
    assert net.faults.stats.retries == 1
    assert ready == pytest.approx(cost.one_sided_ns(4096) + penalty)
    assert clock.now == pytest.approx(cost.cpu_op_ns)


def test_far_window_slows_offload_compute():
    cost = CostModel()
    node = FarMemoryNode(cost)
    clock = VirtualClock()
    base = node.compute_ns(100.0)
    node.faults = FaultInjector(
        FaultPlan(far_windows=(FarWindow(0.0, 1e9, slowdown=4.0),))
    )
    node.clock = clock
    assert node.compute_ns(100.0) == pytest.approx(4.0 * base)


# -- graceful degradation ----------------------------------------------------


def _manager_with_section(one_sided=False):
    cost = CostModel()
    mgr = CacheManager(cost, local_mem_bytes=1 << 20)
    mgr.enable_faults(FaultPlan(seed=1, loss_prob=0.5, breaker_threshold=2))
    obj = mgr.allocate(64 * 1024, name="a")
    cfg = SectionConfig(
        name="sec",
        size_bytes=32 * 1024,
        line_size=256,
        one_sided=one_sided,
        fetch_bytes=64,
    )
    mgr.open_section(cfg, [obj.obj_id])
    return mgr, obj


def test_degradation_is_deferred_to_next_access():
    mgr, obj = _manager_with_section()
    sec = mgr.sections()["sec"]
    mgr._note_persistent_failure("read")
    assert not sec._one_sided  # nothing happens mid network op
    mgr.access(obj.obj_id, 0, 8, False)
    assert sec._one_sided  # applied at the top of the next access


def test_degradation_demotes_comm_before_remapping():
    mgr, obj = _manager_with_section()
    sec = mgr.sections()["sec"]
    mgr._note_persistent_failure("read")
    mgr.access(obj.obj_id, 0, 8, False)
    # step 1: two-sided -> one-sided, whole line travels from now on
    assert sec._one_sided
    assert sec._transfer_bytes == sec._line_size
    assert mgr.degrade_log == [{"action": "demote_comm", "sec": "sec"}]
    mgr._note_persistent_failure("read")
    mgr.access(obj.obj_id, 0, 8, False)
    # step 2: the section is shed entirely; its objects fall back to swap
    assert "sec" not in mgr.sections()
    assert mgr.section_of(obj.obj_id) is None
    assert mgr.degrade_log[-1] == {"action": "remap_swap", "sec": "sec"}
    assert mgr.network.faults.stats.degrades == 2
    # the run keeps going on the swap path
    mgr.access(obj.obj_id, 0, 8, False)


def test_degradation_victim_tie_break_is_name_order():
    """Two sections with identical miss counts: the remap victim is the
    lexicographically-first name, pinned so the degradation order is
    deterministic (and documented) when scores tie."""
    cost = CostModel()
    mgr = CacheManager(cost, local_mem_bytes=1 << 20)
    mgr.enable_faults(FaultPlan(seed=1, loss_prob=0.5, breaker_threshold=2))
    objs = {}
    for name in ("sb", "sa"):  # open out of name order on purpose
        obj = mgr.allocate(64 * 1024, name=f"obj_{name}")
        cfg = SectionConfig(
            name=name,
            size_bytes=32 * 1024,
            line_size=256,
            one_sided=True,  # demotion step already done: remap is next
            fetch_bytes=64,
        )
        mgr.open_section(cfg, [obj.obj_id])
        objs[name] = obj
    # one miss each: identical scores
    mgr.access(objs["sa"].obj_id, 0, 8, False)
    mgr.access(objs["sb"].obj_id, 0, 8, False)
    assert (
        mgr.sections()["sa"].stats.misses == mgr.sections()["sb"].stats.misses
    )
    mgr._note_persistent_failure("read")
    mgr.access(objs["sb"].obj_id, 0, 8, False)
    mgr._note_persistent_failure("read")
    mgr.access(objs["sb"].obj_id, 0, 8, False)
    assert mgr.degrade_log == [
        {"action": "remap_swap", "sec": "sa"},
        {"action": "remap_swap", "sec": "sb"},
    ]


def test_degradation_purges_pending_assignments():
    mgr, obj = _manager_with_section(one_sided=True)  # demotion already done
    mgr.pending_assignment["future_alloc"] = "sec"
    mgr._note_persistent_failure("read")
    mgr.access(obj.obj_id, 0, 8, False)
    assert "future_alloc" not in mgr.pending_assignment


def test_degradation_with_no_sections_is_a_noop():
    cost = CostModel()
    mgr = CacheManager(cost, local_mem_bytes=1 << 20)
    mgr.enable_faults(FaultPlan(seed=1, loss_prob=0.5))
    obj = mgr.allocate(4096, name="a")
    mgr._note_persistent_failure("read")
    mgr.access(obj.obj_id, 0, 8, False)  # must not raise
    assert mgr.degrade_log == []


def test_enable_faults_none_disables():
    mgr, _ = _manager_with_section()
    mgr.enable_faults(None)
    assert mgr.network.faults is None
    assert mgr.network.breaker is None
    assert mgr.network.on_persistent_failure is None
    assert mgr.far_node.faults is None
