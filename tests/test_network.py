"""Network simulator tests."""

import pytest

from repro.memsim.network import Network, TransferKind


def test_sync_read_advances_clock(network, clock, cost):
    ns = network.read(4096)
    assert ns == pytest.approx(cost.one_sided_ns(4096))
    assert clock.now == pytest.approx(ns)


def test_two_sided_read_costs_more(cost, clock):
    net = Network(cost, clock)
    one = net.read(1024, one_sided=True)
    two = net.read(1024, one_sided=False)
    assert two > one


def test_stats_accumulate(network):
    network.read(100)
    network.write(50)
    assert network.stats.bytes_read == 100
    assert network.stats.bytes_written == 50
    assert network.stats.messages == 2
    assert network.stats.total_bytes == 150
    assert network.stats.by_kind[TransferKind.ONE_SIDED_READ] == 100


def test_async_read_returns_future_time(network, clock, cost):
    ready = network.read_async(4096)
    # only the issue cost is charged now
    assert clock.now == pytest.approx(cost.cpu_op_ns)
    assert ready >= cost.one_sided_ns(4096)


def test_async_reads_share_link_bandwidth(network, cost):
    r1 = network.read_async(1 << 20)
    r2 = network.read_async(1 << 20)
    # the second transfer queues behind the first on the wire
    assert r2 >= r1 + cost.transfer_ns(1 << 20) * 0.99


def test_async_write_counts_as_written(network):
    network.write_async(256)
    assert network.stats.bytes_written == 256


def test_rpc_charges_round_trip(network, clock, cost):
    ns = network.rpc(128, 64)
    assert ns >= cost.rpc_ns
    assert clock.now == pytest.approx(ns)
    assert network.stats.by_kind[TransferKind.RPC] == 192


def test_rpc_splits_direction_counters(network):
    # regression (S2): the request travels out, the response travels back
    network.rpc(128, 64)
    assert network.stats.bytes_written == 128
    assert network.stats.bytes_read == 64
    assert network.stats.messages == 1


def test_sync_read_waits_for_booked_link(network, clock, cost):
    # regression (S1): a sync op must queue behind wire time booked by an
    # earlier async transfer, not teleport past it
    network.read_async(1 << 20)
    stall = network.read(4096)
    expected_end = cost.transfer_ns(1 << 20) + cost.one_sided_ns(4096)
    assert clock.now == pytest.approx(expected_end)
    # the return value includes the queue wait, not just the transfer
    assert stall == pytest.approx(expected_end - cost.cpu_op_ns)
    assert clock.breakdown().get("net_wait", 0.0) > 0.0


def test_sync_write_waits_for_booked_link(network, clock, cost):
    network.write_async(1 << 20)
    network.write(4096)
    assert clock.now == pytest.approx(
        cost.transfer_ns(1 << 20) + cost.one_sided_ns(4096)
    )


def test_sync_op_on_idle_link_pays_no_wait(network, clock, cost):
    # the drained link resets: a later sync op on an idle wire is unchanged
    network.read_async(1 << 20)
    network.read(4096)
    t = clock.now
    ns = network.read(4096)
    assert ns == pytest.approx(cost.one_sided_ns(4096))
    assert clock.now == pytest.approx(t + ns)
