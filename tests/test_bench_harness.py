"""Experiment-harness tests."""

import pytest

from repro.bench.harness import (
    Sweep,
    ExperimentPoint,
    effective_ns,
    mira_point,
    native_time_ns,
    system_point,
)
from repro.bench.reporting import format_series, format_sweep_table
from repro.memsim.cost_model import CostModel
from repro.workloads import make_array_sum_workload, make_graph_workload

COST = CostModel()


@pytest.fixture(scope="module")
def wl():
    return make_graph_workload(num_edges=1200, num_nodes=300)


def test_native_time_validates_and_is_deterministic(wl):
    a = native_time_ns(wl, COST)
    b = native_time_ns(wl, COST)
    assert a == b > 0


def test_system_point_normalized(wl):
    native = native_time_ns(wl, COST)
    p = system_point(wl, "fastswap", COST, 0.3, native)
    assert not p.failed
    assert 0 < p.normalized_perf <= 1.2


def test_aifm_failure_recorded_not_raised():
    wl = make_array_sum_workload(num_elems=4096)  # 8-byte AIFM objects
    native = native_time_ns(wl, COST)
    p = system_point(wl, "aifm", COST, 0.1, native)
    assert p.failed
    assert "error" in p.extra


def test_mira_point_returns_program(wl):
    native = native_time_ns(wl, COST)
    p, program = mira_point(wl, COST, 0.3, native, max_iterations=1)
    assert not p.failed
    assert p.normalized_perf > 0
    assert program.plan is not None


def test_sweep_lookup_and_format():
    sweep = Sweep("x", 100.0)
    sweep.add(ExperimentPoint("fastswap", 0.5, 0.25))
    sweep.add(ExperimentPoint("mira", 0.5, 0.9))
    sweep.add(ExperimentPoint("aifm", 0.5, None))
    assert sweep.get("mira", 0.5).normalized_perf == 0.9
    with pytest.raises(KeyError):
        sweep.get("mira", 0.1)
    table = format_sweep_table(sweep, "t")
    assert "FAIL" in table
    assert "0.900" in table


def test_format_series():
    out = format_series("s", [1, 2], [0.5, 1.0], "x", "y")
    assert "0.5000" in out and "1.0000" in out


def test_effective_ns_prefers_measured_region(wl):
    from repro.baselines import NativeMemory
    from repro.core import run_on_baseline

    result = run_on_baseline(
        wl.build_module(), NativeMemory(COST, 4 * wl.footprint_bytes()), wl.data_init
    )
    # no 'measured' region in the graph workload: falls back to elapsed
    assert effective_ns(result) == result.elapsed_ns
