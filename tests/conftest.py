"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.network import Network


@pytest.fixture
def cost() -> CostModel:
    return CostModel()


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def network(cost, clock) -> Network:
    return Network(cost, clock)
