"""Million-event stress: the trace datapath at scale (slow-marked).

Two properties that only show up at volume:

* **Exact determinism** -- replaying the same seeded million-event
  stream twice through the same cache geometry lands on the *same*
  virtual nanosecond and the same counters.  Any hidden iteration-order
  or floating-accumulation nondeterminism in the cache sections would
  surface here long before it corrupted a paper figure.
* **Bounded memory** -- generators are lazy and replay streams, so a
  million events must not materialize; peak traced allocation stays
  tens of megabytes, not gigabytes.

Run explicitly with ``pytest -m slow``; kept lean enough for tier-1.
"""

import tracemalloc

import pytest

from repro.workloads.trace import ScenarioSpec, run_scenario

EVENTS = 1_000_000

STRESS_ZIPF = ScenarioSpec(
    "stress_zipf", "zipf",
    {"num_pages": 512, "num_events": EVENTS, "alpha": 1.1}, seed=42,
)
STRESS_CHASE = ScenarioSpec(
    "stress_chase", "pointer_chase",
    {"num_pages": 256, "num_events": EVENTS}, seed=43,
)

GEOMETRIES = ("mira-direct", "mira-set", "mira-full")


@pytest.mark.slow
@pytest.mark.parametrize("geometry", GEOMETRIES)
@pytest.mark.parametrize("spec", [STRESS_ZIPF, STRESS_CHASE],
                         ids=lambda s: s.name)
def test_million_events_deterministic_across_runs(spec, geometry):
    first = run_scenario(spec, geometry, 0.5)
    second = run_scenario(spec, geometry, 0.5)
    assert first.num_ops == EVENTS
    assert first.elapsed_ns == second.elapsed_ns
    assert first.sections == second.sections
    assert first.breakdown == second.breakdown
    # the runs did real cache work, not a degenerate all-hit/all-miss loop
    assert 0.0 < first.miss_rate < 1.0


@pytest.mark.slow
def test_million_events_bounded_memory():
    tracemalloc.start()
    try:
        res = run_scenario(STRESS_CHASE, "mira-direct", 0.5)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert res.num_ops == EVENTS
    # streaming datapath: a million 8-byte accesses must not materialize
    # (a list of a million (int, bool) tuples alone is ~70 MB)
    assert peak < 64 * 1024 * 1024, f"peak traced allocation {peak} bytes"
