"""Profiler unit tests (the section 4.1 machinery)."""

import pytest

from repro.memsim.clock import VirtualClock
from repro.runtime.profiler import FunctionProfile, Profiler, runtime_ns


def test_runtime_ns_excludes_exec_categories():
    breakdown = {
        "compute": 100.0,
        "dram": 50.0,
        "dram_stream": 25.0,
        "profiling": 5.0,
        "miss_wait": 40.0,
        "hit_overhead": 10.0,
    }
    assert runtime_ns(breakdown) == pytest.approx(50.0)


def test_enter_exit_attribution():
    clock = VirtualClock()
    prof = Profiler(clock)
    prof.enter("main")
    clock.advance(100.0, "compute")
    prof.enter("child")
    clock.advance(50.0, "compute")
    clock.advance(30.0, "miss_wait")
    prof.exit("child")
    clock.advance(20.0, "compute")
    prof.exit("main")
    main = prof.functions["main"]
    child = prof.functions["child"]
    assert child.inclusive_ns == pytest.approx(80.0)
    assert child.exclusive_ns == pytest.approx(80.0)
    assert child.exclusive_runtime_ns == pytest.approx(30.0)
    assert main.inclusive_ns == pytest.approx(200.0)
    assert main.exclusive_ns == pytest.approx(120.0)
    assert main.exclusive_runtime_ns == pytest.approx(0.0)


def test_overhead_ratio():
    p = FunctionProfile("f", calls=1, exclusive_ns=150.0, exclusive_runtime_ns=50.0)
    assert p.overhead_ratio == pytest.approx(0.5)  # 50 runtime / 100 exec
    zero = FunctionProfile("g")
    assert zero.overhead_ratio == 0.0


def test_worst_functions_ranking():
    clock = VirtualClock()
    prof = Profiler(clock)
    prof.functions["a"] = FunctionProfile(
        "a", calls=1, exclusive_ns=100.0, exclusive_runtime_ns=90.0
    )
    prof.functions["b"] = FunctionProfile(
        "b", calls=1, exclusive_ns=100.0, exclusive_runtime_ns=10.0
    )
    prof.functions["c"] = FunctionProfile(
        "c", calls=1, exclusive_ns=100.0, exclusive_runtime_ns=0.0
    )
    assert prof.worst_functions(0.1) == ["a"]
    assert prof.worst_functions(1.0) == ["a", "b"]  # c has no overhead


def test_largest_allocations_selection():
    clock = VirtualClock()
    prof = Profiler(clock)
    prof.record_allocation("s1", "big", 1000, "main")
    prof.record_allocation("s2", "small", 10, "main")
    prof.record_allocation("s3", "other", 500, "helper")
    assert prof.largest_allocations(0.1) == ["big"]
    assert prof.largest_allocations(0.1, functions=["helper"]) == ["other"]


def test_regions():
    clock = VirtualClock()
    prof = Profiler(clock)
    prof.region_begin("measured")
    clock.advance(42.0, "compute")
    prof.region_end("measured")
    assert prof.regions["measured"] == pytest.approx(42.0)
    prof.region_end("never_started")  # tolerated
