"""Windowed telemetry collector: unit behavior plus the PR's acceptance
criteria -- telemetry disabled changes nothing (virtual time + golden
trace digests bit-identical), telemetry enabled keeps virtual time
bit-identical, and the exported series and SLO verdicts are
**byte-identical** across the reference, compiled, and codegen engines
on fastswap, full Mira, and hybrid runs -- including a faulted run whose
degradation windows are visible in the series."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.core import MiraController, run_on_baseline, run_plan
from repro.errors import ObsError
from repro.faults import FaultPlan
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.obs import (
    SloSpec,
    TelemetryCollector,
    Tracer,
    evaluate,
    series_from_events,
)
from repro.obs.export import (
    read_series,
    series_digest,
    series_jsonl,
    write_series,
)
from repro.obs.timeseries import RECORD_FIELDS
from repro.workloads import make_workload

COST = CostModel()

ENGINES = ("reference", "compiled", "codegen")


# -- unit: clock tick hook -----------------------------------------------------


def test_clock_tick_hook_fires_at_boundaries():
    clk = VirtualClock()
    seen = []

    def tick(now):
        seen.append(now)
        return (len(seen) + 1) * 100.0

    clk.set_tick_hook(tick, 100.0)
    clk.advance(99.0)
    assert seen == []
    clk.advance(1.0)  # lands exactly on the boundary: >= fires
    assert seen == [100.0]
    clk.advance(250.0)  # one fold crossing several boundaries: one call
    assert seen == [100.0, 350.0]
    clk.set_tick_hook(None)
    clk.advance(10_000.0)
    assert len(seen) == 2


def test_clock_tick_hook_fires_on_charge_flush():
    clk = VirtualClock()
    seen = []
    clk.set_tick_hook(lambda now: seen.append(now) or float("inf"), 50.0)
    clk.charge(60.0)  # buffered: no fold yet
    assert seen == []
    assert clk.now == 60.0  # observable read folds -> tick fires
    assert seen == [60.0]


def test_clock_reset_disarms_hook():
    clk = VirtualClock()
    clk.set_tick_hook(lambda now: float("inf"), 10.0)
    clk.reset()
    clk.advance(1_000.0)  # must not call the (cleared) hook


def test_forked_clock_carries_no_hook_boundaries_surface_at_join():
    clk = VirtualClock()
    seen = []
    clk.set_tick_hook(lambda now: seen.append(now) or float("inf"), 100.0)
    child = clk.fork()
    child.advance(500.0)  # no hook on the child
    assert seen == []
    clk.join(child)
    assert seen == [500.0]


# -- unit: collector -----------------------------------------------------------


def test_collector_validation():
    with pytest.raises(ObsError, match="window must be positive"):
        TelemetryCollector(0.0)
    with pytest.raises(ObsError, match="window must be positive"):
        TelemetryCollector(-5.0)
    with pytest.raises(ObsError, match="at least one window"):
        TelemetryCollector(100.0, max_windows=0)
    with pytest.raises(ObsError, match="must be positive"):
        series_from_events([], 0.0)


def test_collector_is_single_use():
    workload = make_workload("array_sum", num_elems=256)
    memo = ModuleMemo(workload)
    system = BASELINE_SYSTEMS["fastswap"](COST, 1 << 20)
    tel = TelemetryCollector(1_000.0)
    tel.attach(system)
    with pytest.raises(ObsError, match="single-use"):
        tel.attach(system)
    tel.finish()
    with pytest.raises(ObsError, match="single-use"):
        tel.attach(system)


def _fastswap_series(window_ns=50_000.0, max_windows=4096, num_elems=2048):
    workload = make_workload("array_sum", num_elems=num_elems)
    memo = ModuleMemo(workload)
    local = max(4096, memo.footprint_bytes // 4)
    tel = TelemetryCollector(window_ns, max_windows=max_windows)
    result = run_on_baseline(
        memo.module,
        BASELINE_SYSTEMS["fastswap"](COST, local),
        workload.data_init,
        entry=workload.entry,
        telemetry=tel,
    )
    return tel, result


def test_collector_records_have_full_schema_and_exact_boundaries():
    tel, result = _fastswap_series()
    series = tel.windows()
    assert len(series) >= 2 and tel.dropped == 0
    keys = {name for name, _ in RECORD_FIELDS}
    for i, rec in enumerate(series):
        assert set(rec) == keys
        assert rec["w"] == i
        if not rec["partial"]:
            # the exact boundary, never the live clock value at detection
            assert rec["t"] == (rec["w"] + 1) * tel.window_ns
    assert series[-1]["partial"] is True
    assert series[-1]["t"] == result.elapsed_ns
    assert series[-1]["accesses"] == 2048


def test_collector_counters_are_monotone():
    tel, _ = _fastswap_series()
    series = tel.windows()
    monotone = [
        name for name, _ in RECORD_FIELDS
        if name not in ("w", "t", "partial") and not name.startswith("mw_")
    ]
    for a, b in zip(series, series[1:]):
        for key in monotone:
            assert b[key] >= a[key], key


def test_ring_buffer_drops_oldest_and_counts():
    tel, _ = _fastswap_series(window_ns=10_000.0, max_windows=3)
    assert len(tel.windows()) == 3
    assert tel.dropped > 0
    # survivors are the newest, contiguous windows
    ws = [r["w"] for r in tel.windows()]
    assert ws == list(range(ws[0], ws[0] + 3))
    assert ws[0] == tel.dropped


def test_retire_keeps_counters_monotone_across_section_close():
    """A planned Mira run closes its sections at the end; the retire hook
    must fold their stats into the totals instead of dropping them."""
    workload = make_workload("array_sum", num_elems=2048)
    memo = ModuleMemo(workload)
    local = max(4096, memo.footprint_bytes // 4)
    controller = MiraController(
        memo.fresh, COST, local, data_init=workload.data_init,
        entry=workload.entry, max_iterations=1,
    )
    program = controller.optimize()
    tel = TelemetryCollector(50_000.0)
    run_plan(
        program.module, COST, local, data_init=workload.data_init,
        entry=workload.entry, telemetry=tel,
    )
    series = tel.windows()
    assert series[-1]["accesses"] >= max(r["accesses"] for r in series)
    assert series[-1]["accesses"] >= 2048


def test_series_export_roundtrip_and_digest(tmp_path):
    tel, _ = _fastswap_series()
    series = tel.windows()
    path = tmp_path / "series.jsonl"
    write_series(path, series, meta={"note": "x"})
    header, back = read_series(path)
    assert back == series
    assert header["schema"] == "repro.obs.series/v1"
    assert header["windows"] == len(series)
    # digest covers records only: metadata cannot perturb it
    assert series_digest(back) == series_digest(series)
    assert json.loads(path.read_text().splitlines()[0])["note"] == "x"


def test_series_from_events_matches_live_totals():
    """Event-time binning is not byte-equal to the live series (documented),
    but the final cumulative totals must agree exactly."""
    workload = make_workload("array_sum", num_elems=2048)
    memo = ModuleMemo(workload)
    local = max(4096, memo.footprint_bytes // 4)

    tel = TelemetryCollector(50_000.0)
    run_on_baseline(
        memo.module, BASELINE_SYSTEMS["fastswap"](COST, local),
        workload.data_init, entry=workload.entry, telemetry=tel,
    )
    tracer = Tracer()
    run_on_baseline(
        memo.module, BASELINE_SYSTEMS["fastswap"](COST, local),
        workload.data_init, entry=workload.entry, tracer=tracer,
    )
    events = [json.loads(line) for line in tracer.lines()]
    derived = series_from_events(events, 50_000.0)
    live_last, derived_last = tel.windows()[-1], derived[-1]
    for key in ("accesses", "misses", "evictions", "writebacks",
                "net_bytes_read", "miss_wait_ns"):
        assert derived_last[key] == live_last[key], key


# -- acceptance: disabled telemetry changes nothing ----------------------------


def test_disabled_telemetry_is_invisible():
    workload = make_workload("array_sum", num_elems=2048)
    memo = ModuleMemo(workload)
    local = max(4096, memo.footprint_bytes // 4)

    def run(telemetry=None):
        tracer = Tracer()
        result = run_on_baseline(
            memo.module, BASELINE_SYSTEMS["fastswap"](COST, local),
            workload.data_init, entry=workload.entry, tracer=tracer,
            telemetry=telemetry,
        )
        return result.elapsed_ns, tracer.digest()

    base_ns, base_digest = run()
    tel_ns, tel_digest = run(TelemetryCollector(50_000.0))
    assert tel_ns == base_ns  # bit-identical virtual time
    assert tel_digest == base_digest  # golden-trace digest unchanged


# -- acceptance: byte-identical series + verdicts across engines ---------------

SPEC = SloSpec(name="parity", p95_ns=50_000.0, miss_rate=0.25,
               stall_fraction=0.5, error_budget=0.2)


def _series_bytes(mode: str) -> tuple[str, str]:
    """(series JSONL, SLO verdict digest) for one run under the current
    engine selection."""
    workload = make_workload("array_sum", num_elems=2048)
    memo = ModuleMemo(workload)
    local = max(4096, memo.footprint_bytes // 4)
    tel = TelemetryCollector(window_ns=50_000.0)
    if mode == "fastswap":
        run_on_baseline(
            memo.module, BASELINE_SYSTEMS["fastswap"](COST, local),
            workload.data_init, entry=workload.entry, telemetry=tel,
        )
    elif mode == "mira":
        run_plan(
            memo.module, COST, local, data_init=workload.data_init,
            entry=workload.entry, telemetry=tel,
        )
    else:
        run_plan(
            memo.module, COST, local, data_init=workload.data_init,
            entry=workload.entry, telemetry=tel, hybrid=True,
        )
    series = tel.windows()
    return series_jsonl(series), evaluate(series, SPEC).digest()


@pytest.mark.parametrize("mode", ["fastswap", "mira", "hybrid"])
def test_series_byte_identical_across_engines(mode, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    ref_series, ref_verdict = _series_bytes(mode)
    assert ref_series.count("\n") > 1, "series is empty"
    for engine in ("compiled", "codegen"):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        series, verdict = _series_bytes(mode)
        assert series == ref_series, f"{mode}: series diverge on {engine}"
        assert verdict == ref_verdict, f"{mode}: verdicts diverge on {engine}"


def _faulted_series() -> str:
    """A planned Mira run on an irregular workload under fault injection:
    sync demand misses trip the breaker, the manager degrades sections,
    and the degradation must be visible as a step in the series."""
    workload = make_workload("graph_traversal", num_edges=1500, num_nodes=500)
    memo = ModuleMemo(workload)
    local = max(4096, memo.footprint_bytes // 4)
    controller = MiraController(
        memo.fresh, COST, local, data_init=workload.data_init,
        entry=workload.entry, max_iterations=1,
    )
    program = controller.optimize()
    faults = FaultPlan(
        seed=0, loss_prob=0.3, timeout_prob=0.1,
        breaker_threshold=1, max_retries=2,
    )
    tel = TelemetryCollector(window_ns=300_000.0)
    run_plan(
        program.module, COST, local, data_init=workload.data_init,
        entry=workload.entry, telemetry=tel, faults=faults,
    )
    series = tel.windows()
    last = series[-1]
    assert last["retries"] > 0 and last["breaker_trips"] > 0
    # degradation windows appear: the cumulative counter steps mid-series
    assert last["degrades"] > 0
    assert any(r["degrades"] < last["degrades"] for r in series)
    return series_jsonl(series)


def test_faulted_series_byte_identical_across_engines(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    ref = _faulted_series()
    for engine in ("compiled", "codegen"):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        assert _faulted_series() == ref, f"faulted series diverge on {engine}"
