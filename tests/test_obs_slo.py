"""SLO engine: spec validation, per-window delta math, burn-rate
semantics, and canonical verdict serialization."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.obs import SloSpec, evaluate, render_verdict


def _rec(w, t, partial=False, accesses=0, misses=0, miss_wait_ns=0.0,
         mw_count=0, mw_p50=0.0, mw_p95=0.0, mw_p99=0.0):
    """A minimal series record carrying only the fields evaluate() reads."""
    return {
        "w": w, "t": t, "partial": partial,
        "accesses": accesses, "misses": misses,
        "miss_wait_ns": miss_wait_ns,
        "mw_count": mw_count, "mw_p50": mw_p50,
        "mw_p95": mw_p95, "mw_p99": mw_p99,
    }


# -- spec validation -----------------------------------------------------------


def test_spec_rejects_unknown_keys():
    with pytest.raises(ObsError, match="unknown SloSpec keys.*latency"):
        SloSpec.from_dict({"latency": 5})


def test_spec_rejects_no_objectives():
    with pytest.raises(ObsError, match="declares no objectives"):
        SloSpec(name="empty")


def test_spec_rejects_bad_error_budget():
    with pytest.raises(ObsError, match="error_budget"):
        SloSpec(miss_rate=0.1, error_budget=0.0)
    with pytest.raises(ObsError, match="error_budget"):
        SloSpec(miss_rate=0.1, error_budget=1.5)
    SloSpec(miss_rate=0.1, error_budget=1.0)  # boundary is legal


def test_spec_rejects_negative_objective():
    with pytest.raises(ObsError, match="p95_ns must be >= 0"):
        SloSpec(p95_ns=-1.0)


def test_spec_from_dict_roundtrip():
    spec = SloSpec.from_dict(
        {"name": "x", "p95_ns": 100.0, "miss_rate": 0.2, "error_budget": 0.25}
    )
    assert spec.p95_ns == 100.0 and spec.p99_ns is None
    assert spec.error_budget == 0.25


# -- burn-rate math ------------------------------------------------------------


def test_rates_use_per_window_deltas_not_cumulative_averages():
    """Window 2's delta miss rate is 100% even though the cumulative
    average by then is only ~33%: a bad phase cannot hide in the mean."""
    series = [
        _rec(0, 100.0, accesses=100, misses=0),
        _rec(1, 200.0, accesses=200, misses=0),
        _rec(2, 300.0, accesses=300, misses=100),
    ]
    verdict = evaluate(series, SloSpec(miss_rate=0.5, error_budget=1.0))
    assert verdict.bad_windows == 1
    (v,) = verdict.violations
    assert v == {"w": 2, "t": 300.0, "objective": "miss_rate",
                 "value": 1.0, "target": 0.5}


def test_burn_rate_boundary_passes_and_above_fails():
    series = [
        _rec(0, 100.0, accesses=10, misses=10),  # bad
        _rec(1, 200.0, accesses=20, misses=10),  # good (delta 0/10)
    ]
    on_budget = evaluate(series, SloSpec(miss_rate=0.5, error_budget=0.5))
    assert on_budget.bad_fraction == 0.5
    assert on_budget.burn_rate == 1.0 and on_budget.ok  # exactly 1.0 passes
    over = evaluate(series, SloSpec(miss_rate=0.5, error_budget=0.25))
    assert over.burn_rate == 2.0 and not over.ok


def test_stall_fraction_uses_window_span():
    series = [
        _rec(0, 100.0, miss_wait_ns=10.0),   # 10% stalled
        _rec(1, 200.0, miss_wait_ns=90.0),   # delta 80 over span 100
    ]
    verdict = evaluate(series, SloSpec(stall_fraction=0.5, error_budget=1.0))
    assert [v["w"] for v in verdict.violations] == [1]
    assert verdict.violations[0]["value"] == pytest.approx(0.8)


def test_percentile_objectives_skip_empty_windows():
    """mw_p95 is 0.0 when no waits were observed; that must read as "no
    data", not as a pass/fail sample."""
    series = [
        _rec(0, 100.0, mw_count=0, mw_p95=0.0),
        _rec(1, 200.0, mw_count=4, mw_p95=500.0),
    ]
    verdict = evaluate(series, SloSpec(p95_ns=100.0, error_budget=1.0))
    assert [v["w"] for v in verdict.violations] == [1]
    assert verdict.violations[0]["objective"] == "p95_ns"


def test_first_record_span_rules():
    # lone partial record starting at w=0 spans from t=0
    lone = [_rec(0, 50.0, partial=True, miss_wait_ns=40.0)]
    v = evaluate(lone, SloSpec(stall_fraction=0.5, error_budget=1.0))
    assert v.bad_windows == 1  # 40/50 > 0.5
    # first survivor after ring loss: full window w=3 => span t/(w+1)
    survivor = [_rec(3, 400.0, miss_wait_ns=90.0)]
    v = evaluate(survivor, SloSpec(stall_fraction=0.5, error_budget=1.0))
    assert v.bad_windows == 1  # 90/100 > 0.5
    # partial survivor after ring loss: unknown span => stall skipped
    partial = [_rec(3, 400.0, partial=True, miss_wait_ns=1e9)]
    v = evaluate(partial, SloSpec(stall_fraction=0.5, error_budget=1.0))
    assert v.bad_windows == 0


def test_window_with_multiple_violations_counts_once():
    series = [_rec(0, 100.0, accesses=10, misses=10, miss_wait_ns=90.0,
                   mw_count=10, mw_p95=9.0)]
    spec = SloSpec(p95_ns=1.0, miss_rate=0.1, stall_fraction=0.1,
                   error_budget=1.0)
    verdict = evaluate(series, spec)
    assert verdict.bad_windows == 1
    assert len(verdict.violations) == 3
    # evaluation order: percentiles, then rates
    assert [v["objective"] for v in verdict.violations] == [
        "p95_ns", "miss_rate", "stall_fraction"
    ]


def test_empty_series_is_trivially_ok():
    verdict = evaluate([], SloSpec(miss_rate=0.1))
    assert verdict.windows == 0 and verdict.bad_windows == 0
    assert verdict.bad_fraction == 0.0 and verdict.burn_rate == 0.0
    assert verdict.ok


# -- serialization -------------------------------------------------------------


def test_verdict_json_is_canonical_and_digest_stable():
    series = [
        _rec(0, 100.0, accesses=10, misses=8),
        _rec(1, 200.0, accesses=30, misses=8),
    ]
    spec = SloSpec(name="canon", miss_rate=0.5, error_budget=0.5)
    a, b = evaluate(series, spec), evaluate(series, spec)
    assert a.to_json() == b.to_json()
    assert a.digest() == b.digest()
    d = json.loads(a.to_json())
    assert d["ok"] is True and d["bad_windows"] == 1
    # disabled objectives are omitted from the serialized spec
    assert set(d["spec"]) == {"name", "error_budget", "miss_rate"}
    # digest is sensitive to the spec, not just the outcome
    other = evaluate(series, SloSpec(name="canon", miss_rate=0.6,
                                     error_budget=0.5))
    assert other.digest() != a.digest()


def test_render_verdict_mentions_outcome_and_violations():
    series = [_rec(0, 100.0, accesses=10, misses=10)]
    text = render_verdict(evaluate(series, SloSpec(name="r", miss_rate=0.1,
                                                   error_budget=0.1)))
    assert "SLO 'r': FAIL" in text
    assert "miss_rate" in text and "violated w=0" in text
    ok_text = render_verdict(evaluate(series, SloSpec(name="r", miss_rate=1.0)))
    assert "SLO 'r': PASS" in ok_text
