"""Unit tests for ``repro.obs`` (tracer, metrics, report) plus the PR's
acceptance criterion: on all five paper workloads, the reference
interpreter and the compiled engine produce **byte-identical** JSONL
traces -- the full canonical export compared with ``==``, not just the
digest.
"""

from __future__ import annotations

import json

import pytest

from repro.baselines import NativeMemory
from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.core import MiraController, run_on_baseline, run_plan
from repro.memsim.cost_model import CostModel
from repro.obs import (
    KINDS,
    MetricsRegistry,
    SCHEMA,
    Tracer,
    collect_run_metrics,
    digest_of_events,
    read_jsonl,
)
from repro.obs.report import (
    event_counts,
    phase_timeline,
    render_report,
    section_summary,
)
from repro.obs.report import main as report_main
from repro.workloads import make_workload

COST = CostModel()


# -- Tracer --------------------------------------------------------------------


def test_tracer_rejects_unknown_kind():
    t = Tracer()
    with pytest.raises(ValueError, match="unknown trace event kind"):
        t.emit("cache.hitt", 0.0)
    assert len(t) == 0


def test_tracer_canonical_jsonl():
    t = Tracer(meta={"workload": "x"})
    t.emit("cache.hit", 10.0, sec="main", obj=1, line=2)
    t.emit("cache.miss", 20.0, sec="main", obj=1, line=3, wait=5.0, write=False)
    lines = t.to_jsonl().splitlines()
    assert len(lines) == 3
    header = json.loads(lines[0])
    assert header == {"schema": SCHEMA, "events": 2, "workload": "x"}
    # canonical form: sorted keys, minimal separators
    assert lines[1] == '{"i":0,"k":"cache.hit","line":2,"obj":1,"sec":"main","t":10.0}'
    ev = json.loads(lines[2])
    assert ev["i"] == 1 and ev["k"] == "cache.miss" and ev["wait"] == 5.0


def test_tracer_digest_ignores_meta_but_not_events():
    a, b = Tracer(meta={"run": 1}), Tracer(meta={"run": 2})
    for t in (a, b):
        t.emit("net.send", 1.0, bytes=64)
    assert a.digest() == b.digest()
    b.emit("net.recv", 2.0, bytes=64)
    assert a.digest() != b.digest()


def test_trace_roundtrip_and_digest_of_events(tmp_path):
    t = Tracer(meta={"note": "roundtrip"})
    t.emit("swap.fault", 5.0, obj=1, line=0, wait=100.0, write=True)
    t.emit("cache.evict", 7.5, sec="swap", obj=1, line=0, dirty=True, hinted=False)
    path = tmp_path / "trace.jsonl"
    t.write_jsonl(path)
    header, events = read_jsonl(path)
    assert header["schema"] == SCHEMA and header["note"] == "roundtrip"
    assert [e["k"] for e in events] == ["swap.fault", "cache.evict"]
    # decoding then re-digesting reproduces the writer's digest exactly
    assert digest_of_events(events) == t.digest()


def test_every_emitted_kind_is_declared():
    """Grep the source tree for emit()/emitter() calls; each kind must be
    in KINDS (the reverse of the runtime check: no dead schema entries
    creep in unvalidated)."""
    import re
    from pathlib import Path

    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    emitted = set()
    for py in src.rglob("*.py"):
        emitted.update(
            re.findall(r'\.emit(?:ter)?\(\s*"([a-z_.]+)"', py.read_text())
        )
    assert emitted, "no emit() calls found -- did the tracer get removed?"
    assert emitted <= KINDS
    unused = KINDS - emitted
    assert not unused, f"schema declares kinds nothing emits: {sorted(unused)}"


# -- metrics -------------------------------------------------------------------


def test_registry_get_or_create_and_snapshot():
    reg = MetricsRegistry()
    reg.counter("a.count").inc()
    reg.counter("a.count").inc(2)
    reg.gauge("b.level").set(3.5)
    h = reg.histogram("c.wait")
    for v in (1.0, 3.0, 8.0):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["counters"] == {"a.count": 3}
    assert snap["gauges"] == {"b.level": 3.5}
    assert snap["histograms"]["c.wait"] == {
        "count": 3, "sum": 12.0, "min": 1.0, "max": 8.0, "mean": 4.0,
        "p50": 3.0, "p95": 8.0, "p99": 8.0,
    }
    # JSON export is valid and deterministic
    assert json.loads(reg.to_json()) == json.loads(reg.to_json())


def test_empty_histogram_snapshot():
    h = MetricsRegistry().histogram("x")
    # explicit zero percentiles (not None): an empty histogram must export
    # to OpenMetrics / series JSONL without per-field null handling
    assert h.snapshot() == {
        "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        "p50": 0.0, "p95": 0.0, "p99": 0.0,
    }
    assert h.percentile(50) is None  # the raw accessor still signals "no data"


def test_registry_rejects_type_conflicts():
    from repro.errors import ObsError

    reg = MetricsRegistry()
    reg.counter("net.ops")
    reg.gauge("cache.size")
    reg.histogram("wait.ns")
    # same name under the same type: get-or-create, no error
    assert reg.counter("net.ops") is reg.counter("net.ops")
    with pytest.raises(ObsError, match="already registered as a counter"):
        reg.gauge("net.ops")
    with pytest.raises(ObsError, match="already registered as a gauge"):
        reg.histogram("cache.size")
    with pytest.raises(ObsError, match="already registered as a histogram"):
        reg.counter("wait.ns")
    # the failed registration must not leave a phantom metric behind
    assert "net.ops" not in reg.snapshot()["gauges"]


def test_histogram_exact_percentiles():
    h = MetricsRegistry().histogram("y")
    # unsorted insertion; percentile() must sort lazily and be exact
    for v in (50.0, 10.0, 40.0, 30.0, 20.0, 60.0, 90.0, 70.0, 80.0, 100.0):
        h.observe(v)
    assert h.percentile(50) == 50.0  # nearest-rank: ceil(10*0.5)=5th of 10
    assert h.percentile(95) == 100.0
    assert h.percentile(99) == 100.0
    assert h.percentile(10) == 10.0
    assert h.percentile(0) == 10.0  # rank clamps to 1
    h.observe(5.0)  # re-dirty after a snapshot-style read
    assert h.percentile(50) == 50.0
    assert h.min == 5.0 and h.count == 11


def _small_run(system="fastswap", tracer=None):
    """One pressured array_sum run (local memory = 1/4 footprint)."""
    workload = make_workload("array_sum", num_elems=2048)
    memo = ModuleMemo(workload)
    local = max(4096, memo.footprint_bytes // 4)
    if system == "swap":
        # an unplanned module on the Mira cache manager: everything goes
        # through the generic swap section, which publishes section stats
        result = run_plan(
            memo.module, COST, local, data_init=workload.data_init,
            entry=workload.entry, tracer=tracer,
        )
    else:
        result = run_on_baseline(
            memo.module,
            BASELINE_SYSTEMS[system](COST, local),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    workload.verify_results(result.results)
    return result


def test_collect_run_metrics_publishes_all_layers():
    result = _small_run("swap")
    snap = collect_run_metrics(result).snapshot()
    g = snap["gauges"]
    assert g["run.elapsed_ns"] == result.elapsed_ns
    assert g["run.elapsed_ns"] > 0
    assert g["net.bytes_read"] > 0  # faults pulled pages over the wire
    assert g["far.used_bytes"] > 0
    assert g["cache.swap.misses"] > 0
    assert g["cache.swap.miss_rate"] == pytest.approx(
        g["cache.swap.misses"] / g["cache.swap.accesses"]
    )
    # clock breakdown categories all surface under clock.*
    assert any(k.startswith("clock.") for k in g)


# -- report --------------------------------------------------------------------


def _synthetic_events():
    return [
        {"i": 0, "k": "prof.region", "t": 0.0, "label": "warmup", "ev": "begin"},
        {"i": 1, "k": "cache.miss", "t": 1.0, "sec": "s", "obj": 1, "line": 0,
         "wait": 50.0, "write": False},
        {"i": 2, "k": "net.recv", "t": 1.0, "bytes": 64, "one_sided": True,
         "ns": 50.0},
        {"i": 3, "k": "prof.region", "t": 2.0, "label": "warmup", "ev": "end"},
        {"i": 4, "k": "prof.region", "t": 2.0, "label": "measured", "ev": "begin"},
        {"i": 5, "k": "cache.hit", "t": 3.0, "sec": "s", "obj": 1, "line": 0},
        {"i": 6, "k": "cache.hit", "t": 4.0, "sec": "s", "obj": 1, "line": 0},
        {"i": 7, "k": "swap.fault", "t": 5.0, "obj": 2, "line": 1, "wait": 80.0,
         "write": True},
        {"i": 8, "k": "prof.region", "t": 9.0, "label": "measured", "ev": "end"},
        # unterminated span: must not appear in the timeline
        {"i": 9, "k": "prof.region", "t": 9.0, "label": "dangling", "ev": "begin"},
    ]


def test_phase_timeline_spans_and_attribution():
    rows = phase_timeline(_synthetic_events())
    assert [r["phase"] for r in rows] == ["warmup", "measured"]
    warmup, measured = rows
    assert warmup["duration_ns"] == 2.0
    assert (warmup["hits"], warmup["misses"], warmup["net_bytes"]) == (0, 1, 64)
    assert measured["duration_ns"] == 7.0
    assert (measured["hits"], measured["misses"]) == (2, 1)


def test_section_summary_aggregates():
    rows = section_summary(_synthetic_events())
    assert rows["s"]["hits"] == 2 and rows["s"]["misses"] == 1
    assert rows["s"]["miss_wait_ns"] == 50.0
    assert rows["s"]["miss_rate"] == pytest.approx(1 / 3)
    # swap.fault events land in the implicit "swap" section
    assert rows["swap"]["misses"] == 1 and rows["swap"]["miss_wait_ns"] == 80.0


def test_event_counts_sorted():
    counts = event_counts(_synthetic_events())
    assert counts["prof.region"] == 5
    assert list(counts) == sorted(counts)


def test_render_report_and_cli(tmp_path, capsys):
    tracer = Tracer(meta={"workload": "array_sum"})
    _small_run("fastswap", tracer=tracer)
    path = tmp_path / "run.jsonl"
    tracer.write_jsonl(path)

    header, events = read_jsonl(path)
    text = render_report(header, events)
    assert SCHEMA in text and "section summary" in text and "swap" in text

    assert report_main([str(path), "--sections"]) == 0
    out = capsys.readouterr().out
    assert "section summary" in out and "phase timeline" not in out
    assert tracer.digest()[:16] in out


# -- acceptance: byte-identical traces on all five workloads -------------------

from tests.test_engine_parity import WORKLOADS  # noqa: E402  (shared configs)


def _trace_bytes(name: str) -> dict[str, str]:
    """Full canonical JSONL per measurement point under the current engine."""
    workload = make_workload(name, **WORKLOADS[name])
    memo = ModuleMemo(workload)
    local = max(4096, int(memo.footprint_bytes * 0.25))
    out: dict[str, str] = {}

    tracer = Tracer()
    run_on_baseline(
        memo.module,
        NativeMemory(COST, 2 * memo.footprint_bytes + (1 << 20)),
        workload.data_init,
        entry=workload.entry,
        tracer=tracer,
    )
    out["native"] = tracer.to_jsonl()

    tracer = Tracer()
    run_on_baseline(
        memo.module,
        BASELINE_SYSTEMS["fastswap"](COST, local),
        workload.data_init,
        entry=workload.entry,
        tracer=tracer,
    )
    out["fastswap"] = tracer.to_jsonl()

    tracer = Tracer()
    controller = MiraController(
        memo.fresh, COST, local, data_init=workload.data_init,
        entry=workload.entry, max_iterations=1, tracer=tracer,
    )
    program = controller.optimize()
    run_plan(
        program.module, COST, local, data_init=workload.data_init,
        entry=workload.entry, tracer=tracer,
    )
    out["mira"] = tracer.to_jsonl()
    return out


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_traces_byte_identical_across_engines(name, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    reference = _trace_bytes(name)
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    compiled = _trace_bytes(name)
    for point in reference:
        assert reference[point] == compiled[point], (
            f"{name}: traces diverge between engines at {point}"
        )
        assert reference[point].count("\n") > 1, (
            f"{name}/{point}: trace is empty -- emission points lost?"
        )
