"""Smoke tests: every example script runs end-to-end (on reduced inputs
where the script allows it)."""

import subprocess
import sys
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_show_ir_prints_all_three_stages():
    out = _run("show_ir.py")
    assert "remotable.alloc" in out
    assert "rmem.prefetch" in out
    assert "prefetch_stage" in out


def test_quickstart_runs():
    out = _run("quickstart.py", "0.3")
    assert "mira" in out
    assert "section" in out


@pytest.mark.slow
def test_data_analytics_runs():
    out = _run("data_analytics.py")
    assert "batching" in out


@pytest.mark.slow
def test_pointer_chasing_runs():
    out = _run("pointer_chasing.py")
    assert "offloaded" in out


@pytest.mark.slow
def test_ml_inference_runs():
    out = _run("ml_inference.py", timeout=900)
    assert "multi-threaded" in out
