"""Cache-manager (Mira memory system) tests."""

import pytest

from repro.cache.config import SectionConfig, Structure
from repro.cache.manager import CacheManager
from repro.errors import ConfigError, MemoryError_
from repro.memsim.cost_model import CostModel


@pytest.fixture
def mgr(cost):
    return CacheManager(cost, 1 << 20)


def test_unassigned_objects_go_to_swap(mgr):
    obj = mgr.allocate(64 * 1024, name="a")
    mgr.access(obj.obj_id, 0, 8, False)
    assert mgr.swap.stats.misses == 1


def test_out_of_bounds_access_rejected(mgr):
    obj = mgr.allocate(100, name="a")
    with pytest.raises(MemoryError_):
        mgr.access(obj.obj_id, 100, 8, False)


def test_open_section_routes_accesses(mgr):
    obj = mgr.allocate(64 * 1024, name="a")
    sec = mgr.open_section(SectionConfig("s", 8192, 64), [obj.obj_id])
    mgr.access(obj.obj_id, 0, 8, False)
    assert sec.stats.accesses == 1
    assert mgr.swap.stats.accesses == 0


def test_section_budget_enforced(mgr):
    mgr.open_section(SectionConfig("s1", 1 << 19, 64), [])
    mgr.open_section(SectionConfig("s2", 1 << 19, 64), [])
    with pytest.raises(ConfigError):
        mgr.open_section(SectionConfig("s3", 4096, 64), [])


def test_duplicate_section_name_rejected(mgr):
    mgr.open_section(SectionConfig("s", 4096, 64), [])
    with pytest.raises(ConfigError):
        mgr.open_section(SectionConfig("s", 4096, 64), [])


def test_open_section_shrinks_swap_and_close_restores(mgr):
    pages_before = mgr.swap.capacity_pages
    mgr.open_section(SectionConfig("s", 1 << 19, 64), [])
    assert mgr.swap.capacity_pages < pages_before
    mgr.close_section("s")
    assert mgr.swap.capacity_pages == pages_before


def test_close_unknown_section(mgr):
    with pytest.raises(ConfigError):
        mgr.close_section("nope")


def test_close_section_returns_objects_to_swap(mgr):
    obj = mgr.allocate(4096, name="a")
    mgr.open_section(SectionConfig("s", 8192, 64), [obj.obj_id])
    mgr.close_section("s")
    mgr.access(obj.obj_id, 0, 8, False)
    assert mgr.swap.stats.accesses == 1


def test_assign_moves_object_out_of_swap(mgr):
    obj = mgr.allocate(4096, name="a")
    mgr.access(obj.obj_id, 0, 8, True)  # dirty page in swap
    written_before = mgr.network.stats.bytes_written
    mgr.open_section(SectionConfig("s", 8192, 64), [obj.obj_id])
    # the dirty swap page was written back on reassignment
    assert mgr.network.stats.bytes_written > written_before
    mgr.access(obj.obj_id, 0, 8, False)
    assert mgr.sections()["s"].stats.accesses == 1


def test_pending_assignment_applies_at_allocation(mgr):
    mgr.open_section(SectionConfig("s", 8192, 64), [])
    mgr.pending_assignment["arr"] = "s"
    obj = mgr.allocate(4096, name="arr")
    mgr.access(obj.obj_id, 0, 8, False)
    assert mgr.sections()["s"].stats.accesses == 1


def test_per_thread_sections_route_by_thread(mgr):
    obj = mgr.allocate(4096, name="a")
    mgr.open_section(SectionConfig("s", 16384, 64), [obj.obj_id], per_thread=2)
    mgr.current_thread = 0
    mgr.access(obj.obj_id, 0, 8, False)
    mgr.current_thread = 1
    mgr.access(obj.obj_id, 0, 8, False)
    secs = mgr.sections()
    assert secs["s@t0"].stats.accesses == 1
    assert secs["s@t1"].stats.accesses == 1
    # each thread has its own copy: both missed
    assert secs["s@t0"].stats.misses == 1
    assert secs["s@t1"].stats.misses == 1
    mgr.close_section("s")
    assert not mgr.sections()


def test_prefetch_batch_single_message(mgr):
    a = mgr.allocate(8192, name="a")
    b = mgr.allocate(8192, name="b")
    mgr.open_section(SectionConfig("s", 16384, 64), [a.obj_id, b.obj_id])
    msgs_before = mgr.network.stats.messages
    mgr.prefetch_batch([(a.obj_id, 0, 128), (b.obj_id, 0, 128)])
    assert mgr.network.stats.messages == msgs_before + 1


def test_prefetch_window_capped(mgr):
    obj = mgr.allocate(1 << 19, name="a")
    mgr.open_section(SectionConfig("s", 8 * 64, 64), [obj.obj_id])
    mgr.prefetch(obj.obj_id, 0, 1 << 19)  # would be 8192 lines
    sec = mgr.sections()["s"]
    assert sec.stats.prefetches_issued <= 4  # half of 8 lines


def test_evict_hint_trailing_marks_previous_line(mgr):
    obj = mgr.allocate(4096, name="a")
    sec = mgr.open_section(SectionConfig("s", 8192, 64), [obj.obj_id])
    mgr.access(obj.obj_id, 0, 8, False)
    mgr.access(obj.obj_id, 64, 8, False)
    mgr.evict_hint_trailing(obj.obj_id, 64)
    assert sec.peek((obj.obj_id, 0)).evictable
    assert not sec.peek((obj.obj_id, 1)).evictable


def test_discard_drops_clean_lines(mgr):
    obj = mgr.allocate(4096, name="a")
    sec = mgr.open_section(SectionConfig("s", 8192, 64), [obj.obj_id])
    mgr.access(obj.obj_id, 0, 8, False)
    mgr.discard(obj.obj_id)
    assert not sec.resident_lines()


def test_free_releases_cached_state(mgr):
    obj = mgr.allocate(4096, name="a")
    sec = mgr.open_section(SectionConfig("s", 8192, 64), [obj.obj_id])
    mgr.access(obj.obj_id, 0, 8, False)
    mgr.free(obj.obj_id)
    assert not sec.resident_lines()


def test_metadata_accounting(mgr):
    obj = mgr.allocate(64 * 1024, name="a")
    mgr.access(obj.obj_id, 0, 8, False)  # one swap page: 8 bytes
    assert mgr.metadata_bytes() == 8
    mgr.open_section(SectionConfig("s", 8192, 64, metadata_per_line=16), [obj.obj_id])
    mgr.access(obj.obj_id, 0, 8, False)
    assert mgr.metadata_bytes() == 16
    mgr._track_metadata()  # peak tracking is sampled; force one sample
    assert mgr.peak_metadata_bytes >= 16


def test_metadata_free_section_keeps_none(mgr):
    obj = mgr.allocate(4096, name="a")
    mgr.open_section(
        SectionConfig("s", 8192, 64, metadata_free=True), [obj.obj_id]
    )
    mgr.access(obj.obj_id, 0, 8, False)
    assert mgr.metadata_bytes() == 0


def test_per_object_miss_stats(mgr):
    obj = mgr.allocate(64 * 1024, name="a")
    mgr.access(obj.obj_id, 0, 8, False)
    mgr.access(obj.obj_id, 8, 8, False)
    st = mgr.stats.object(obj.obj_id)
    assert st.accesses == 2
    assert st.misses == 1
    assert st.miss_rate == 0.5
