"""Replay equivalence: recorded runs must reproduce bit-exactly.

The contract (DESIGN.md section 4h): any run traced with
``Tracer(access_log=True)`` -- raw trace scenarios and full IR workloads
alike -- replays on a freshly built identical system to the *same*
virtual time, the *same* event stream, and the *same* per-section
hit/miss/eviction counters.  The strict-overshoot rule turns any state
drift into a typed :class:`ReplayDivergence` instead of a near-miss.
"""

import importlib.util
import pathlib

import pytest

from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.cache.manager import CacheManager
from repro.core import MiraController, run_on_baseline, run_plan
from repro.errors import ReplayDivergence, TraceError
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.workloads import make_workload
from repro.workloads.trace import (
    SCENARIOS,
    ScenarioSpec,
    compare_traces,
    make_system,
    replay_events,
    replay_trace_file,
    run_scenario,
    split_runs,
    system_counters,
)

#: per-workload sizes small enough for tier-1 yet exercising every op
#: kind the workloads emit (batching, offload RPC, hints, native spans)
WORKLOAD_PARAMS = {
    "array_sum": {"n": 8192},
    "dataframe": {"num_rows": 2048},
    "graph_traversal": {"num_nodes": 500, "num_edges": 1500},
    "mcf": {"num_nodes": 256, "num_arcs": 1024},
    "gpt2": {"layers": 3, "d_model": 64, "seq_len": 32, "batch": 2,
             "passes": 1, "warmup_passes": 1},
}

RATIO = 0.5


@pytest.fixture(autouse=True)
def _pin_prefetch_env(monkeypatch):
    # replay rebuilds systems from scratch; results must not depend on
    # the ambient prefetch-policy override
    monkeypatch.delenv("REPRO_PREFETCH", raising=False)


def _dicts(tracer: Tracer) -> list[dict]:
    return [{"k": k, "t": t, **f} for k, t, f in tracer.events]


def _check_replay(recorded_events, recorded_res, fresh_system, context):
    tr2 = Tracer(access_log=True)
    fresh_system.set_tracer(tr2)
    replayed = replay_events(
        fresh_system, recorded_events, elapsed_ns=recorded_res.elapsed_ns
    )
    n = compare_traces(recorded_events, tr2.events, context=context)
    assert n > 0
    assert replayed.elapsed_ns == recorded_res.elapsed_ns
    assert replayed.counters == system_counters(recorded_res.memsys)
    return replayed


# -- IR workloads, baseline chassis ------------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOAD_PARAMS))
def test_ir_workload_replays_bit_exact_on_fastswap(workload):
    cost = CostModel()
    wl = make_workload(workload, **WORKLOAD_PARAMS[workload])
    memo = ModuleMemo(wl)
    local = max(4096, int(memo.footprint_bytes * RATIO))
    tracer = Tracer(access_log=True)
    res = run_on_baseline(
        memo.module,
        BASELINE_SYSTEMS["fastswap"](cost, local),
        wl.data_init,
        entry=wl.entry,
        tracer=tracer,
    )
    _check_replay(
        _dicts(tracer),
        res,
        BASELINE_SYSTEMS["fastswap"](cost, local),
        f"{workload}/fastswap",
    )


# -- IR workloads, full Mira plan --------------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOAD_PARAMS))
def test_ir_workload_replays_bit_exact_on_mira(workload):
    cost = CostModel()
    wl = make_workload(workload, **WORKLOAD_PARAMS[workload])
    memo = ModuleMemo(wl)
    local = max(4096, int(memo.footprint_bytes * RATIO))
    controller = MiraController(
        memo.fresh, cost, local, data_init=wl.data_init, entry=wl.entry,
        max_iterations=2,
    )
    program = controller.optimize()  # untraced; only the final run is pinned
    tracer = Tracer(access_log=True)
    res = run_plan(
        program.module, cost, local, data_init=wl.data_init, entry=wl.entry,
        tracer=tracer,
    )
    # a bare CacheManager: the recorded mem.open events rebuild the plan's
    # sections during replay
    _check_replay(_dicts(tracer), res, CacheManager(cost, local), f"{workload}/mira")


# -- raw scenarios, every system ---------------------------------------------

_QUICK = ScenarioSpec(
    "quick_mixed", "mixed",
    {"phases": [
        {"kind": "zipf", "num_pages": 32, "num_events": 1200},
        {"kind": "pointer_chase", "num_pages": 32, "num_events": 800,
         "offset": 1 << 18},
    ]},
    seed=13,
)


@pytest.mark.parametrize(
    "system",
    ["fastswap", "leap", "aifm", "mira-direct", "mira-set", "mira-full",
     "hybrid"],
)
def test_raw_scenario_self_replay_across_systems(system):
    tracer = Tracer(access_log=True)
    res = run_scenario(_QUICK, system, RATIO, tracer=tracer)
    fresh = make_system(system, res.local_mem_bytes)
    tr2 = Tracer(access_log=True)
    fresh.set_tracer(tr2)
    replayed = replay_events(fresh, _dicts(tracer), elapsed_ns=res.elapsed_ns)
    compare_traces(tracer.events, tr2.events, context=f"quick_mixed/{system}")
    assert replayed.elapsed_ns == res.elapsed_ns
    assert replayed.counters == res.sections


def test_scenario_rerun_is_deterministic():
    a = run_scenario("zipf_hot", "mira-set", RATIO)
    b = run_scenario("zipf_hot", "mira-set", RATIO)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.sections == b.sections


# -- address translation at region boundaries --------------------------------

# Two page-aligned regions separated by a gap far larger than
# REGION_GAP_PAGES, so the cached-last-region fast path in replay_ops has
# a stale-cache hazard to get wrong at every boundary.
_REGIONS = [(0, 2 * 4096), (100 * 4096, 4096)]


def _replay_boundary_ops(ops, regions=None):
    from repro.baselines import FastSwap

    system = FastSwap(CostModel(), 1 << 20)
    from repro.workloads.trace.replay import replay_ops

    return replay_ops(system, ops, regions if regions is not None else _REGIONS)


def test_replay_ops_boundary_addresses_translate():
    """First byte, last aligned slot, and cross-region hops -- including
    returning to a region after the cache moved past it -- all resolve."""
    ops = [
        (0, 0),  # first byte of region 0
        (2 * 4096 - 8, 0),  # last aligned 8-byte slot of region 0
        (100 * 4096, 0),  # first byte of region 1 (cache moves forward)
        (100 * 4096 + 4096 - 8, 1),  # last aligned slot of region 1
        (0, 1),  # back to region 0: the cached region 1 must not be used
        (2 * 4096 - 8, 0),
    ]
    assert _replay_boundary_ops(ops) == len(ops)


def test_replay_ops_one_past_region_end_raises():
    from repro.errors import MemoryError_

    with pytest.raises(MemoryError_, match="gap after region 0"):
        _replay_boundary_ops([(2 * 4096, 0)])


def test_replay_ops_gap_address_raises_even_with_stale_cache():
    """After the cache has advanced to region 1, an address one past
    region 0's end must still raise -- never silently mistranslate into
    the cached region's object."""
    from repro.errors import MemoryError_

    with pytest.raises(MemoryError_, match="gap after region 0"):
        _replay_boundary_ops([(100 * 4096, 0), (2 * 4096, 0)])


def test_replay_ops_past_last_region_raises():
    from repro.errors import MemoryError_

    with pytest.raises(MemoryError_, match="gap after region 1"):
        _replay_boundary_ops([(100 * 4096 + 4096, 0)])


def test_replay_ops_below_every_region_raises():
    from repro.errors import MemoryError_

    with pytest.raises(MemoryError_, match="below every mapped region"):
        _replay_boundary_ops([(0, 0)], regions=[(4096, 4096)])


def test_replay_ops_straddling_region_end_raises():
    """An access that starts in-bounds but runs past the region's end is
    the canonical straddle error, not a silent partial read."""
    from repro.errors import MemoryError_

    with pytest.raises(MemoryError_):
        _replay_boundary_ops([(2 * 4096 - 4, 0)])


# -- divergence detection ----------------------------------------------------


def _small_recorded_run():
    tracer = Tracer(access_log=True)
    # 8 pages of skewed traffic at 4 resident: evictions happen, so the
    # recorded timing is sensitive to the system's geometry
    spec = ScenarioSpec("tiny", "zipf", {"num_pages": 8, "num_events": 400},
                        seed=3)
    res = run_scenario(spec, "fastswap", RATIO, tracer=tracer)
    return _dicts(tracer), res


def test_strict_overshoot_raises():
    events, res = _small_recorded_run()
    # pull one op's entry time earlier than its predecessor: the replay
    # clock will already be past it
    ops = [e for e in events if e["k"] == "mem.access"]
    ops[50]["t"] = ops[49]["t"] - 1.0
    fresh = make_system("fastswap", res.local_mem_bytes)
    with pytest.raises(ReplayDivergence, match="overshot"):
        replay_events(fresh, events, elapsed_ns=res.elapsed_ns)


def test_end_of_run_overshoot_raises():
    events, res = _small_recorded_run()
    fresh = make_system("fastswap", res.local_mem_bytes)
    with pytest.raises(ReplayDivergence, match="overshot"):
        replay_events(fresh, events, elapsed_ns=res.elapsed_ns / 2)


def test_forbidden_kinds_rejected():
    events, res = _small_recorded_run()
    events.insert(3, {"k": "thread.fork", "t": 0.0, "tid": 1})
    fresh = make_system("fastswap", res.local_mem_bytes)
    with pytest.raises(ReplayDivergence, match="not replayable"):
        replay_events(fresh, events, elapsed_ns=res.elapsed_ns)


def test_compare_traces_reports_first_difference():
    events, _ = _small_recorded_run()
    mutated = [dict(e) for e in events]
    mutated[10]["t"] = mutated[10]["t"] + 1.0
    with pytest.raises(ReplayDivergence, match="compared event 10"):
        compare_traces(events, mutated)
    with pytest.raises(ReplayDivergence, match="recorded events"):
        compare_traces(events, events[:-1])
    assert compare_traces(events, [dict(e) for e in events]) == len(events)


def test_wrong_geometry_diverges():
    events, res = _small_recorded_run()
    # half the local memory: the replayed system faults where the original
    # hit, so some access entry lands with the clock already past it
    fresh = make_system("fastswap", max(4096, res.local_mem_bytes // 2))
    with pytest.raises(ReplayDivergence):
        replay_events(fresh, events, elapsed_ns=res.elapsed_ns)


# -- multi-run traces --------------------------------------------------------


def test_split_runs_on_clock_resets():
    mk = lambda t: {"k": "mem.access", "t": t}
    events = [mk(0.0), mk(5.0), mk(9.0), mk(0.0), mk(2.0), mk(1.0)]
    runs = split_runs(events)
    assert [len(r) for r in runs] == [3, 2, 1]
    assert split_runs([]) == []
    # equal successive times never split (many ops share one entry time)
    assert len(split_runs([mk(0.0), mk(0.0), mk(3.0)])) == 1


# -- file-level round trip (scripts/make_trace.py) ---------------------------


def _load_make_trace():
    path = (
        pathlib.Path(__file__).resolve().parent.parent / "scripts" / "make_trace.py"
    )
    spec = importlib.util.spec_from_file_location("make_trace", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_make_trace_file_replays_bit_exact(tmp_path):
    mt = _load_make_trace()
    out = tmp_path / "t.jsonl"
    rc = mt.main(
        ["--workload", "array_sum", "--system", "fastswap", "--out", str(out)]
    )
    assert rc == 0
    result = replay_trace_file(str(out))  # raises ReplayDivergence on drift
    assert result.num_ops > 0 and result.elapsed_ns > 0


def test_make_trace_refuses_overwrite(tmp_path):
    mt = _load_make_trace()
    out = tmp_path / "t.jsonl"
    args = ["--workload", "array_sum", "--system", "native", "--out", str(out)]
    assert mt.main(args) == 0
    assert mt.main(args) == 2  # exists, no --force
    assert mt.main(args + ["--force"]) == 0


def test_replay_requires_access_log(tmp_path):
    tracer = Tracer()  # no op log
    run_scenario(_QUICK, "fastswap", RATIO, tracer=tracer)
    path = tmp_path / "plain.jsonl"
    tracer.write_jsonl(path)
    with pytest.raises(TraceError, match="access_log"):
        replay_trace_file(str(path))


def test_scenario_corpus_is_complete():
    # the pinned corpus the benchmark and CI golden tests sweep
    assert len(SCENARIOS) >= 8
    kinds = {spec.kind for spec in SCENARIOS.values()}
    assert kinds == {"zipf", "sequential", "pointer_chase", "mixed"}
