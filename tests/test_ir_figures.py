"""Reproduction of the paper's IR listings (Figs. 13/14) as tests."""

from repro.ir.printer import print_function
from repro.memsim.cost_model import CostModel
from repro.transforms import (
    convert_to_remote,
    insert_eviction_hints,
    insert_prefetches,
)
from repro.ir.verifier import verify
from repro.workloads import make_graph_workload


def _converted_module():
    module = make_graph_workload(num_edges=64, num_nodes=16).build_module()
    convert_to_remote(module, ["edges", "nodes"])
    return module


def test_fig13_conversion_listing():
    """Fig. 13: allocation becomes remotable.alloc; loads/stores on
    selected objects become rmem operations."""
    module = _converted_module()
    text = print_function(module.get("main"))
    assert "remotable.alloc" in text
    assert "rmem.load" in text
    assert "rmem.store" in text
    assert "memref.load" not in text
    verify(module)


def test_fig14_prefetch_listing():
    """Fig. 14: asynchronous fetch of future iterations' data, including
    the chained %1 = fetch A[i+d]; fetch B[%1] form."""
    module = _converted_module()
    insert_eviction_hints(module)
    insert_prefetches(module, CostModel())
    text = print_function(module.get("main"))
    assert "rmem.prefetch" in text
    assert "prefetch_stage" in text  # the chained stage-1 fetch
    assert "rmem.evict_hint" in text
    verify(module)


def test_listing_roundtrip_is_deterministic():
    a = print_function(_converted_module().get("main"))
    b = print_function(_converted_module().get("main"))
    assert a == b
