#!/usr/bin/env python
"""Statement coverage for ``src/repro`` without pytest-cov.

CI measures coverage with ``pytest --cov=repro`` (see
``.github/workflows/ci.yml``); this script exists so the recorded
baseline can be re-measured in environments where pytest-cov is not
installed.  It runs pytest in-process under the stdlib
:mod:`trace` module and reports per-module and total statement coverage.

The denominator is exact: executable lines are taken from each module's
compiled code objects (``co_lines``), not from regex heuristics.  The
numbers track pytest-cov's within a fraction of a percent.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py            # default fast subset
    PYTHONPATH=src python scripts/measure_coverage.py --full     # whole tier-1 suite (slow!)
    PYTHONPATH=src python scripts/measure_coverage.py --fail-under 70

Default selection skips the slow-marked tests and the heavyweight
cross-engine byte-comparison suites (their code paths are covered by the
cheaper tests too); line tracing makes Python ~20x slower, so the full
run is only worth it when updating the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import trace
import types

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: fast, representative selection (see module docstring)
DEFAULT_ARGS = [
    "-q",
    "-p", "no:cacheprovider",
    "-m", "not slow",
    "-k", "not bit_identical and not byte_identical and not golden",
]


class _FileIgnore:
    """Replacement for ``trace.Ignore`` keyed by *filename*.

    The stdlib version caches ignore decisions by bare module name, so
    after it sees (and ignores) any stdlib ``utils``/``base``/``__init__``
    it silently drops every later file with the same basename -- including
    ours.  Prefix-matching the full path has no such collisions.
    """

    def __init__(self, prefixes: list[str]) -> None:
        self._prefixes = tuple(prefixes)
        self._cache: dict[str, int] = {}

    def names(self, filename: str, modulename: str) -> int:
        hit = self._cache.get(filename)
        if hit is None:
            hit = self._cache[filename] = int(
                filename.startswith(self._prefixes)
            )
        return hit


def executable_lines(path: pathlib.Path) -> set[int]:
    """Exact executable-line set from the compiled code objects."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set[int] = set()
    stack: list[types.CodeType] = [code]
    while stack:
        c = stack.pop()
        for _start, _end, lineno in c.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in c.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    # module docstrings/def lines compile to line entries; that matches
    # what pytest-cov counts, so no further filtering
    return lines


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--full", action="store_true",
                    help="trace the whole tier-1 suite instead of the fast subset")
    ap.add_argument("--fail-under", type=float, default=None,
                    help="exit 1 if total coverage is below this percent")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help="also write per-module results to this JSON file")
    args = ap.parse_args(argv)

    import pytest

    pytest_args = ["-q", "-p", "no:cacheprovider"] if args.full else DEFAULT_ARGS
    tracer = trace.Trace(count=1, trace=0)
    tracer.ignore = _FileIgnore([sys.prefix, sys.exec_prefix])
    rc = tracer.runfunc(pytest.main, list(pytest_args))
    if rc not in (0, pytest.ExitCode.NO_TESTS_COLLECTED):
        print(f"pytest failed (exit {rc}); coverage numbers would be bogus")
        return int(rc)

    executed_by_file: dict[str, set[int]] = {}
    for (filename, lineno), count in tracer.results().counts.items():
        if count:
            executed_by_file.setdefault(filename, set()).add(lineno)

    rows = []
    total_exec = total_hit = 0
    for py in sorted(SRC.rglob("*.py")):
        known = executable_lines(py)
        if not known:
            continue
        hit = executed_by_file.get(str(py), set()) & known
        total_exec += len(known)
        total_hit += len(hit)
        rows.append((str(py.relative_to(SRC.parent)), len(hit), len(known)))

    width = max(len(name) for name, _, _ in rows)
    print(f"\n{'module':<{width}} {'lines':>7} {'hit':>7} {'cover':>7}")
    for name, hit, known in rows:
        print(f"{name:<{width}} {known:>7} {hit:>7} {hit / known:>6.1%}")
    total = total_hit / total_exec if total_exec else 0.0
    print(f"{'TOTAL':<{width}} {total_exec:>7} {total_hit:>7} {total:>6.1%}")

    if args.json:
        args.json.write_text(json.dumps({
            "selection": "full" if args.full else "fast-subset",
            "total_percent": round(100 * total, 2),
            "modules": {n: round(100 * h / k, 2) for n, h, k in rows},
        }, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.fail_under is not None and 100 * total < args.fail_under:
        print(f"FAIL: total coverage {100 * total:.1f}% < floor {args.fail_under}%")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
