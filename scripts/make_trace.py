#!/usr/bin/env python
"""Run one workload on one system with tracing on and write the JSONL.

The produced file feeds straight into the analysis CLI::

    PYTHONPATH=src python scripts/make_trace.py \
        --workload graph_traversal --system mira --out trace.jsonl
    PYTHONPATH=src python -m repro.obs.report trace.jsonl --attribution
    PYTHONPATH=src python -m repro.obs.report trace.jsonl --flame --out trace.folded

Systems: any baseline in ``BASELINE_SYSTEMS`` (fastswap, leap, aifm,
native) or ``mira`` (full controller, traced end to end).  The digest is
printed so runs can be compared for behavioral identity at a glance.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import NativeMemory
from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.core import MiraController, run_on_baseline, run_plan
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.workloads import WORKLOAD_FACTORIES, make_workload


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--workload", default="array_sum", choices=sorted(WORKLOAD_FACTORIES)
    )
    ap.add_argument(
        "--system",
        default="mira",
        choices=sorted([*BASELINE_SYSTEMS, "native", "mira"]),
    )
    ap.add_argument(
        "--ratio",
        type=float,
        default=0.5,
        help="local-memory ratio (fraction of the workload footprint)",
    )
    ap.add_argument("--out", default="trace.jsonl")
    ap.add_argument(
        "--iterations", type=int, default=1, help="mira controller iterations"
    )
    args = ap.parse_args(argv)

    cost = CostModel()
    workload = make_workload(args.workload)
    memo = ModuleMemo(workload)
    local = max(4096, int(memo.footprint_bytes * args.ratio))
    tracer = Tracer(
        meta={"workload": args.workload, "system": args.system, "ratio": args.ratio}
    )
    if args.system == "native":
        result = run_on_baseline(
            memo.module,
            NativeMemory(cost, 2 * memo.footprint_bytes + (1 << 20)),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    elif args.system == "mira":
        controller = MiraController(
            memo.fresh,
            cost,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            max_iterations=args.iterations,
            tracer=tracer,
        )
        program = controller.optimize()
        result = run_plan(
            program.module,
            cost,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    else:
        result = run_on_baseline(
            memo.module,
            BASELINE_SYSTEMS[args.system](cost, local),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    workload.verify_results(result.results)
    tracer.write_jsonl(args.out)
    print(
        f"{args.workload} on {args.system}@{args.ratio}: "
        f"{len(tracer)} events, {result.elapsed_ns:.0f} virtual ns"
    )
    print(f"wrote {args.out} (digest {tracer.digest()})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
