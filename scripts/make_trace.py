#!/usr/bin/env python
"""Run one workload on one system with tracing on and write the JSONL.

The produced file feeds straight into the analysis CLI::

    PYTHONPATH=src python scripts/make_trace.py \
        --workload graph_traversal --system mira --out trace.jsonl
    PYTHONPATH=src python -m repro.obs.report trace.jsonl --attribution
    PYTHONPATH=src python -m repro.obs.report trace.jsonl --flame --out trace.folded

Systems: any baseline in ``BASELINE_SYSTEMS`` (fastswap, leap, aifm,
native) or ``mira`` (full controller, traced end to end).  The digest is
printed so runs can be compared for behavioral identity at a glance.

By default the tracer records the ``mem.*`` op log (``access_log=True``)
and the header carries the system geometry, so the emitted file is a
self-contained replayable scenario::

    PYTHONPATH=src python -m repro.workloads.trace --replay trace.jsonl

An existing output file is never overwritten unless ``--force`` is given.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import NativeMemory
from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.core import MiraController, run_on_baseline, run_plan
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.workloads import WORKLOAD_FACTORIES, make_workload
from repro.workloads.trace import REPLAY_SCHEMA


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--workload", default="array_sum", choices=sorted(WORKLOAD_FACTORIES)
    )
    ap.add_argument(
        "--system",
        default="mira",
        choices=sorted([*BASELINE_SYSTEMS, "native", "mira"]),
    )
    ap.add_argument(
        "--ratio",
        type=float,
        default=0.5,
        help="local-memory ratio (fraction of the workload footprint)",
    )
    ap.add_argument("--out", default="trace.jsonl")
    ap.add_argument(
        "--iterations", type=int, default=1, help="mira controller iterations"
    )
    ap.add_argument(
        "--force", action="store_true",
        help="overwrite --out if it already exists",
    )
    ap.add_argument(
        "--no-access-log", dest="access_log", action="store_false",
        help="omit the mem.* op log (smaller file, not self-replayable)",
    )
    args = ap.parse_args(argv)

    out = pathlib.Path(args.out)
    if out.exists() and not args.force:
        print(
            f"error: {out} already exists; pass --force to overwrite",
            file=sys.stderr,
        )
        return 2

    cost = CostModel()
    workload = make_workload(args.workload)
    memo = ModuleMemo(workload)
    if args.system == "native":
        # native runs unconstrained; record the size it actually gets so
        # a replay rebuilds the identical system
        local = 2 * memo.footprint_bytes + (1 << 20)
    else:
        local = max(4096, int(memo.footprint_bytes * args.ratio))
    tracer = Tracer(
        access_log=args.access_log,
        meta={
            "workload": args.workload,
            "system": args.system,
            "ratio": args.ratio,
            "local_mem_bytes": local,
            "trace_schema": REPLAY_SCHEMA,
        },
    )
    if args.system == "native":
        result = run_on_baseline(
            memo.module,
            NativeMemory(cost, local),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    elif args.system == "mira":
        controller = MiraController(
            memo.fresh,
            cost,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            max_iterations=args.iterations,
            tracer=tracer,
        )
        program = controller.optimize()
        result = run_plan(
            program.module,
            cost,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    else:
        result = run_on_baseline(
            memo.module,
            BASELINE_SYSTEMS[args.system](cost, local),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    workload.verify_results(result.results)
    tracer.meta["elapsed_ns"] = result.elapsed_ns
    tracer.write_jsonl(out)
    print(
        f"{args.workload} on {args.system}@{args.ratio}: "
        f"{len(tracer)} events, {result.elapsed_ns:.0f} virtual ns"
    )
    print(f"wrote {args.out} (digest {tracer.digest()})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
