"""Fig. 12: memory partitioning across sections vs the ILP's choice.

Paper result: application performance varies with how local memory is
split across the node / edge / random-array sections; the partition the
ILP selects from the sampled curves matches the best enumerated one, and
it gives most memory to the non-sequential sections.
"""

from dataclasses import replace

from benchmarks.common import COST, cached_native_ns, record, run_with_plan
from repro.core import MiraController
from repro.workloads import make_graph_workload

RATIO = 0.5
#: enumerated (node share, third share) partitions of the non-stream
#: memory; the edge section keeps its small streaming size
PARTITIONS = [(0.2, 0.8), (0.4, 0.6), (0.6, 0.4), (0.8, 0.2)]


def test_fig12_ilp_partition(benchmark):
    wl = make_graph_workload(with_random_array=True)
    native = cached_native_ns(wl)
    local = int(wl.footprint_bytes() * RATIO)

    def experiment():
        controller = MiraController(
            wl.build_module, COST, local, data_init=wl.data_init,
            max_iterations=1, sample_sizes=True,
        )
        program = controller.optimize()
        plan = program.plan
        ilp_sizes = program.plan.notes.get("ilp", {})
        src = wl.build_module()
        ilp_result = run_with_plan(src, plan, local, wl.data_init)
        ilp_perf = native / ilp_result.elapsed_ns

        node_sp = next(sp for sp in plan.sections if "nodes" in sp.object_names)
        third_sp = next(sp for sp in plan.sections if "third" in sp.object_names)
        pool = node_sp.config.size_bytes + third_sp.config.size_bytes
        rows = []
        for node_frac, third_frac in PARTITIONS:
            sections = []
            for sp in plan.sections:
                if sp is node_sp:
                    sections.append(sp.with_size(max(sp.config.line_size, int(pool * node_frac))))
                elif sp is third_sp:
                    sections.append(sp.with_size(max(sp.config.line_size, int(pool * third_frac))))
                else:
                    sections.append(sp)
            variant = replace(plan, sections=sections)
            result = run_with_plan(src, variant, local, wl.data_init)
            rows.append(((node_frac, third_frac), native / result.elapsed_ns))
        return ilp_perf, ilp_sizes, rows

    ilp_perf, ilp_sizes, rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 12: partitions of the node/third memory pool"]
    for (nf, tf), perf in rows:
        text.append(f"  node {nf:.0%} / third {tf:.0%} -> {perf:.3f}")
    text.append(f"  ILP-chosen sizes {ilp_sizes} -> {ilp_perf:.3f}")
    record("fig12", "\n".join(text))
    best_enumerated = max(perf for _, perf in rows)
    # the ILP's partition is at least as good as the best enumerated one
    # (small tolerance: enumerations are coarse)
    assert ilp_perf >= best_enumerated * 0.93
