"""Benchmark-suite options.

``pytest benchmarks --workers 4`` fans independent sweep points out to a
process pool (see ``repro.bench.harness.sweep_systems``).  The value is
exported through ``REPRO_WORKERS`` so worker selection lives in one place
(``common.sweep_workers``) and standalone scripts behave the same way.
"""

from __future__ import annotations

import os


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=None,
        help="process-pool size for figure sweeps (default: REPRO_WORKERS or serial)",
    )


def pytest_configure(config):
    workers = config.getoption("--workers")
    if workers is not None:
        os.environ["REPRO_WORKERS"] = str(workers)
