"""Fig. 25: writable shared memory multi-threading (DataFrame filter).

Paper result: Mira scales better than FastSwap and AIFM -- most Mira
optimizations still apply (the threads' affine writes partition the
result vector, so it is shared-nothing and gets per-thread sections).
"""

from benchmarks.common import COST, record
from repro.bench.harness import mira_point, native_time_ns, system_point
from repro.workloads.dataframe import make_filter_workload

THREADS = [1, 2, 4, 8]
RATIO = 0.4


def test_fig25_mt_filter(benchmark):
    native1 = native_time_ns(make_filter_workload(num_threads=1), COST)

    def experiment():
        rows = []
        for T in THREADS:
            wl = make_filter_workload(num_threads=T)
            fast = system_point(wl, "fastswap", COST, RATIO, native1, num_threads=T)
            aifm = system_point(wl, "aifm", COST, RATIO, native1)
            mira, _ = mira_point(wl, COST, RATIO, native1, num_threads=T)
            rows.append(
                (
                    T,
                    fast.normalized_perf,
                    None if aifm.failed else aifm.normalized_perf,
                    mira.normalized_perf,
                )
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 25: DataFrame filter multi-threaded scaling"]
    text.append(f"{'threads':>8} | {'fastswap':>9} | {'aifm':>9} | {'mira':>9}")
    for T, fs, am, mi in rows:
        am_s = f"{am:>9.3f}" if am is not None else f"{'FAIL':>9}"
        text.append(f"{T:>8} | {fs:>9.3f} | {am_s} | {mi:>9.3f}")
    record("fig25", "\n".join(text))
    by_t = {r[0]: r for r in rows}
    # everything scales here, but Mira scales best
    assert by_t[8][3] > by_t[8][1]
    if by_t[8][2] is not None:
        assert by_t[8][3] > by_t[8][2]
    assert by_t[8][3] > 2 * by_t[1][3]
