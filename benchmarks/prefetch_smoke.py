"""Prefetch-policy benchmark CLI.

Runs the policy x workload sweep in :mod:`repro.bench.prefetch` (every
prefetch policy on the Leap chassis at equal cache size, five paper
workloads), prints a winners table plus the programmed-vs-Leap stall
comparison, and writes ``BENCH_prefetch.json`` at the repo root.  All
scores are *virtual-time* attributions from the critical-path profiler,
so the emitted numbers are bit-deterministic and regression-gated by
``repro.obs.regress``.

Run with::

    PYTHONPATH=src:. python benchmarks/prefetch_smoke.py [--policies ...]

This file is deliberately not named ``test_*``: it is a benchmark script,
not part of the tier-1 suite.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import time

from repro.bench.prefetch import POLICIES, WORKLOADS, measure_all

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_prefetch.json"


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--policies", nargs="*", default=list(POLICIES))
    ap.add_argument("--workloads", nargs="*", default=list(WORKLOADS))
    args = ap.parse_args()

    t0 = time.perf_counter()
    sweep = measure_all(policies=args.policies, workloads=args.workloads)
    wall_s = round(time.perf_counter() - t0, 3)

    report: dict = {
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "wall_s": wall_s,
        **sweep,
    }

    width = max(len(w) for w in args.workloads) + 2
    header = "workload".ljust(width) + "".join(
        p.rjust(14) for p in args.policies
    )
    print(header)
    print("-" * len(header))
    by_cell = {(c["workload"], c["policy"]): c for c in sweep["cells"]}
    for w in args.workloads:
        row = w.ljust(width)
        for p in args.policies:
            row += f"{by_cell[(w, p)]['stall_ns']:>14,.0f}"
        print(row + f"   winner: {sweep['winners'][w]}")
    print("\nstall_ns per cell (lower is better); programmed vs leap:")
    for w, cmp in sweep["programmed_vs_leap"].items():
        print(
            f"  {w:<{width}} leap={cmp['leap_stall_ns']:,.0f}  "
            f"programmed={cmp['programmed_stall_ns']:,.0f}  "
            f"reduction={cmp['reduction']:.1%}"
        )

    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")


if __name__ == "__main__":
    main()
