"""Fig. 17: GPT-2 inference vs local-memory size.

Paper result: Mira's per-layer lifetime + batched prefetching keeps
performance flat even at 4.5% local memory, while FastSwap/Leap collapse
(they cache data that is not needed soon and fault synchronously).
"""

from benchmarks.common import record, run_sweep
from repro.bench.reporting import format_sweep_table
from repro.workloads import make_gpt2_workload

RATIOS = [0.045, 0.1, 0.2, 0.5, 1.0]


def test_fig17_gpt2(benchmark):
    def experiment():
        return run_sweep(
            make_gpt2_workload(), RATIOS, systems=("fastswap", "leap", "mira")
        )

    sweep = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record("fig17", format_sweep_table(sweep, "Fig. 17: GPT-2 inference, normalized performance"))
    # flat from 10% of local memory down (paper: flat at 4.5%)
    mira = {p.local_ratio: p.normalized_perf for p in sweep.series("mira")}
    assert mira[0.1] > 0.8
    assert mira[0.2] > 0.8
    assert mira[0.045] > 0.45
    # swap systems collapse when memory shrinks
    assert sweep.get("fastswap", 0.1).normalized_perf < 0.4
    assert sweep.get("leap", 0.1).normalized_perf < 0.4
    # everything converges at full memory
    assert sweep.get("fastswap", 1.0).normalized_perf > 0.9
    assert mira[1.0] > 0.9
