"""Fig. 20: metadata overhead, Mira vs AIFM.

Paper result: AIFM keeps per-remotable-object metadata (significant for
fine-grained objects); Mira keeps only per-cache-line metadata, and none
at all for lines whose lifetime the compiler fully controls.
"""

from benchmarks.common import COST, cached_native_ns, record
from repro.baselines import AIFM
from repro.core import MiraController, run_on_baseline, run_plan
from repro.errors import AllocationError
from repro.workloads import (
    make_array_sum_workload,
    make_graph_workload,
    make_mcf_workload,
)

WORKLOADS = [make_array_sum_workload, make_graph_workload, make_mcf_workload]


def test_fig20_metadata(benchmark):
    def experiment():
        rows = []
        for make in WORKLOADS:
            wl = make()
            fp = wl.footprint_bytes()
            local = fp  # full local memory
            program = MiraController(
                wl.build_module, COST, local, data_init=wl.data_init,
                max_iterations=2,
            ).optimize()
            result = run_plan(program.module, COST, local, wl.data_init)
            mira_md = max(
                result.memsys.peak_metadata_bytes, result.memsys.metadata_bytes()
            )
            try:
                aifm = AIFM(COST, local)
                run_on_baseline(wl.build_module(), aifm, wl.data_init)
                aifm_md = aifm.metadata_bytes()
            except AllocationError:
                aifm_md = None
            rows.append((wl.name, fp, mira_md, aifm_md))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 20: metadata bytes (per byte of data)"]
    text.append(f"{'workload':>16} | {'mira md/data':>12} | {'aifm md/data':>12}")
    for name, fp, mira_md, aifm_md in rows:
        aifm_s = f"{aifm_md / fp:>12.4f}" if aifm_md is not None else f"{'FAIL':>12}"
        text.append(f"{name:>16} | {mira_md / fp:>12.4f} | {aifm_s}")
    record("fig20", "\n".join(text))
    by = {name: (fp, mira_md, aifm_md) for name, fp, mira_md, aifm_md in rows}
    # Mira keeps no metadata at all for fully compiler-controlled lines
    assert by["array_sum"][1] == 0
    # where AIFM keeps per-element remotable pointers (MCF's array
    # library), its metadata dwarfs Mira's per-line bookkeeping
    fp, mira_md, aifm_md = by["mcf"]
    assert aifm_md is not None and mira_md < 0.05 * aifm_md
    # Mira's metadata stays a small fraction of the data everywhere
    for name, fp, mira_md, aifm_md in rows:
        assert mira_md < 0.2 * fp
