"""Fig. 8: node-array miss rate, joint vs separated cache.

Paper result: after separation (and proper sizing), the node array's miss
rate drops by 44%-78% while the edge array's stays the same.
"""

from benchmarks.common import planned, record, run_with_plan
from repro.workloads import make_graph_workload

from benchmarks.test_fig07_separation import joint_variant

RATIOS = [0.2, 0.35, 0.5]


def _object_miss_rate(result, name: str) -> float:
    obj = result.memsys.address_space.find_by_name(name)
    return result.memsys.stats.object(obj.obj_id).miss_rate


def test_fig08_node_missrate(benchmark):
    wl = make_graph_workload()

    def experiment():
        rows = []
        for ratio in RATIOS:
            local = int(wl.footprint_bytes() * ratio)
            src, plan, _ = planned(wl, local)
            sep = run_with_plan(src, plan, local, wl.data_init)
            joint = run_with_plan(src, joint_variant(plan), local, wl.data_init)
            rows.append(
                (
                    ratio,
                    _object_miss_rate(joint, "nodes"),
                    _object_miss_rate(sep, "nodes"),
                    _object_miss_rate(joint, "edges"),
                    _object_miss_rate(sep, "edges"),
                )
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 8: per-array miss rates, joint vs separated"]
    text.append(
        f"{'local':>8} | {'node joint':>10} | {'node sep':>10} | "
        f"{'edge joint':>10} | {'edge sep':>10}"
    )
    for ratio, nj, ns, ej, es in rows:
        text.append(
            f"{ratio:>7.0%} | {nj:>10.4f} | {ns:>10.4f} | {ej:>10.4f} | {es:>10.4f}"
        )
    record("fig08", "\n".join(text))
    for ratio, node_joint, node_sep, edge_joint, edge_sep in rows:
        # separation reduces node misses substantially (paper: 44-78%)
        if node_joint > 0.01:
            assert node_sep < 0.7 * node_joint
        # the edge stream stays cheap in both configurations (its joint
        # misses are the compulsory per-line ones)
        assert edge_sep <= edge_joint
        assert edge_joint < 0.1
