"""Ablation beyond the paper's figures: the same programs and controller
under a CXL-class far-memory profile (paper section 2.1 claims the
designs carry over to CXL memory pools; DESIGN.md lists this ablation).

Expected: the absolute far-memory penalty shrinks for everyone (lower
latency, higher bandwidth), Mira still leads the swap baseline at small
memory, and Mira's *decisions* adapt -- shorter prefetch distances.
"""

from benchmarks.common import COST, record
from repro.bench.harness import mira_point, native_time_ns, system_point
from repro.ir.dialects import scf
from repro.memsim.cost_model import CostModel
from repro.transforms.prefetch import prefetch_distance
from repro.workloads import make_graph_workload

RATIO = 0.25


def test_cxl_ablation(benchmark):
    def experiment():
        wl = make_graph_workload()
        rows = []
        for label, cost in (("rdma", CostModel.rdma()), ("cxl", CostModel.cxl())):
            native = native_time_ns(wl, cost)
            fast = system_point(wl, "fastswap", cost, RATIO, native)
            mira, _ = mira_point(wl, cost, RATIO, native)
            loop = next(
                op for op in wl.build_module().walk() if isinstance(op, scf.ForOp)
            )
            rows.append(
                (
                    label,
                    fast.normalized_perf,
                    mira.normalized_perf,
                    prefetch_distance(loop, cost),
                )
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Ablation: RDMA vs CXL far memory (graph traversal, 25% local)"]
    text.append(f"{'profile':>8} | {'fastswap':>9} | {'mira':>9} | {'pf dist':>8}")
    for label, fs, mi, dist in rows:
        text.append(f"{label:>8} | {fs:>9.3f} | {mi:>9.3f} | {dist:>8}")
    record("cxl_ablation", "\n".join(text))
    by = {r[0]: r for r in rows}
    # everyone's penalty shrinks on faster memory
    assert by["cxl"][1] > by["rdma"][1]
    # Mira still leads the swap baseline under CXL
    assert by["cxl"][2] > by["cxl"][1]
    # and its prefetch lookahead adapts to the shorter round trip
    assert by["cxl"][3] < by["rdma"][3]
