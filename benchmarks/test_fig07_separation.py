"""Fig. 7: cache-section separation vs a joint cache (+ AIFM reference).

The joint configuration puts both arrays in one fully-associative section
of the same total size; separation splits them per access pattern.
"""

from dataclasses import replace

from benchmarks.common import COST, cached_native_ns, planned, record, run_with_plan
from repro.bench.harness import system_point
from repro.bench.reporting import format_series
from repro.cache.config import SectionConfig, Structure
from repro.core.plan import SectionPlan
from repro.workloads import make_graph_workload

RATIOS = [0.2, 0.35, 0.5]


def joint_variant(plan):
    """All planned objects in one undifferentiated section, without the
    per-pattern code optimizations.  Section separation is what lets Mira
    "customize cache configurations for one access pattern at a time and
    in turn optimize code for one cache configuration at a time" (section
    1), so the non-separated baseline loses both."""
    names = [n for sp in plan.sections for n in sp.object_names]
    total = sum(sp.config.size_bytes for sp in plan.sections)
    cfg = SectionConfig(
        "joint", total, 128, Structure.FULLY_ASSOCIATIVE,
        notes={"reason": "no separation (Fig. 7 baseline)"},
    )
    merged = replace(plan, sections=[SectionPlan(cfg, names)])
    return merged.without_options("prefetch", "evict", "batching", "native")


def test_fig07_separation(benchmark):
    wl = make_graph_workload()
    native = cached_native_ns(wl)

    def experiment():
        rows = []
        for ratio in RATIOS:
            local = int(wl.footprint_bytes() * ratio)
            src, plan, _ = planned(wl, local)
            sep = run_with_plan(src, plan, local, wl.data_init)
            joint = run_with_plan(src, joint_variant(plan), local, wl.data_init)
            aifm = system_point(wl, "aifm", COST, ratio, native)
            rows.append(
                (
                    ratio,
                    native / sep.elapsed_ns,
                    native / joint.elapsed_ns,
                    aifm.normalized_perf,
                )
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 7: cache separation vs joint cache (graph traversal)"]
    text.append(f"{'local':>8} | {'separated':>10} | {'joint':>10} | {'aifm':>10}")
    for ratio, sep, joint, aifm in rows:
        text.append(f"{ratio:>7.0%} | {sep:>10.3f} | {joint:>10.3f} | {aifm:>10.3f}")
    record("fig07", "\n".join(text))
    for ratio, sep, joint, aifm in rows:
        assert sep >= joint  # separation never loses
        assert sep > aifm
    # and wins clearly at the smallest memory
    assert rows[0][1] > 1.1 * rows[0][2]
