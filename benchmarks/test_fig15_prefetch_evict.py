"""Fig. 15: benefit of Mira's prefetching and eviction hints vs Leap.

Paper result: program-directed prefetching hides the sequential edge
latency (the larger effect); eviction hints hide write-back; Leap's
majority-history prefetching cannot capture the interleaved pattern.
"""

from benchmarks.common import COST, cached_native_ns, planned, record, run_with_plan
from repro.bench.harness import system_point
from repro.bench.reporting import format_series
from repro.workloads import make_graph_workload

RATIO = 0.25


def test_fig15_prefetch_evict(benchmark):
    wl = make_graph_workload()
    native = cached_native_ns(wl)
    local = int(wl.footprint_bytes() * RATIO)

    def experiment():
        src, plan, _ = planned(wl, local)
        base = plan.without_options("prefetch", "evict", "batching", "native")
        rows = []
        r = run_with_plan(src, base, local, wl.data_init)
        rows.append(("sections only", native / r.elapsed_ns))
        r = run_with_plan(
            src, plan.without_options("evict", "batching", "native"),
            local, wl.data_init,
        )
        rows.append(("+prefetch", native / r.elapsed_ns))
        r = run_with_plan(
            src, plan.without_options("prefetch", "batching", "native"),
            local, wl.data_init,
        )
        rows.append(("+evict hints", native / r.elapsed_ns))
        r = run_with_plan(
            src, plan.without_options("batching", "native"), local, wl.data_init
        )
        rows.append(("+both", native / r.elapsed_ns))
        leap = system_point(wl, "leap", COST, RATIO, native)
        rows.append(("Leap", leap.normalized_perf))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(
        "fig15",
        format_series(
            "Fig. 15: prefetch / eviction-hint ablation (25% local memory)",
            [r[0] for r in rows],
            [r[1] for r in rows],
            "configuration",
            "normalized perf",
        ),
    )
    by = dict(rows)
    assert by["+prefetch"] > by["sections only"]       # prefetch helps
    assert by["+both"] >= by["+evict hints"] * 0.98    # combined best-ish
    assert by["+both"] > by["Leap"] * 2                # Leap can't follow pointers
