"""Fig. 21: performance deep dive -- adding Mira techniques one or two at
a time, per application.

Paper result: cache-section separation gives the big jump for everything
except MCF (whose pointer-driven accesses need the later prefetching
work); prefetch+eviction and the remaining optimizations add on top.
"""

from benchmarks.common import cached_native_ns, planned, record, run_with_plan
from repro.workloads import (
    make_dataframe_workload,
    make_gpt2_workload,
    make_mcf_workload,
)

RATIO = 0.3
STACKS = [
    ("swap", None),
    ("+sections", ("prefetch", "evict", "batching", "readwrite", "native")),
    ("+prefetch/evict", ("batching", "readwrite", "native")),
    ("full", ()),
]


def _effective(result):
    return result.profiler.regions.get("measured", result.elapsed_ns)


def test_fig21_deepdive(benchmark):
    def experiment():
        table = {}
        for make in (make_dataframe_workload, make_gpt2_workload, make_mcf_workload):
            wl = make()
            native = cached_native_ns(wl)
            local = int(wl.footprint_bytes() * RATIO)
            src, plan, swap_result = planned(wl, local)
            rows = []
            for label, dropped in STACKS:
                if dropped is None:
                    rows.append((label, native / _effective(swap_result)))
                    continue
                variant = plan.without_options(*dropped)
                result = run_with_plan(src, variant, local, wl.data_init)
                rows.append((label, native / _effective(result)))
            table[wl.name] = rows
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 21: technique deep dive at 30% local memory"]
    labels = [s[0] for s in STACKS]
    text.append(f"{'workload':>12} | " + " | ".join(f"{l:>16}" for l in labels))
    for name, rows in table.items():
        cells = " | ".join(f"{perf:>16.3f}" for _, perf in rows)
        text.append(f"{name:>12} | {cells}")
    record("fig21", "\n".join(text))
    for name, rows in table.items():
        by = dict(rows)
        assert by["full"] >= by["swap"] * 0.98
    # the full stack gives a clear win for gpt2 and mcf at this ratio
    assert dict(table["gpt2"])["full"] > 2 * dict(table["gpt2"])["swap"]
    assert dict(table["mcf"])["full"] > 1.5 * dict(table["mcf"])["swap"]
