"""Fig. 23: data-access batching on the DataFrame avg/min/max job.

Paper result: Mira fuses the three consecutive loops over the same vector
and batch-fetches it; batching consistently improves Mira across local
memory sizes.  Library-level systems (AIFM) run each operator in
isolation and cannot batch across them.
"""

from benchmarks.common import COST, cached_native_ns, planned, record, run_with_plan
from repro.bench.harness import system_point
from repro.workloads.dataframe import make_dataframe_amm_workload

RATIOS = [0.2, 0.4, 0.6, 0.8]


def test_fig23_batching(benchmark):
    wl = make_dataframe_amm_workload()
    native = cached_native_ns(wl)

    def experiment():
        rows = []
        for ratio in RATIOS:
            local = int(wl.footprint_bytes() * ratio)
            src, plan, _ = planned(wl, local)
            with_batch = run_with_plan(src, plan, local, wl.data_init)
            wl.verify_results(with_batch.results)
            without = run_with_plan(
                src, plan.without_options("batching"), local, wl.data_init
            )
            fast = system_point(wl, "fastswap", COST, ratio, native)
            aifm = system_point(wl, "aifm", COST, ratio, native)
            rows.append(
                (
                    ratio,
                    native / with_batch.elapsed_ns,
                    native / without.elapsed_ns,
                    fast.normalized_perf,
                    None if aifm.failed else aifm.normalized_perf,
                )
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 23: batching (avg/min/max over one vector)"]
    text.append(
        f"{'local':>8} | {'mira+batch':>10} | {'mira-batch':>10} | "
        f"{'fastswap':>10} | {'aifm':>10}"
    )
    for ratio, wb, wo, fs, am in rows:
        am_s = f"{am:>10.3f}" if am is not None else f"{'FAIL':>10}"
        text.append(f"{ratio:>7.0%} | {wb:>10.3f} | {wo:>10.3f} | {fs:>10.3f} | {am_s}")
    record("fig23", "\n".join(text))
    for ratio, with_b, without_b, fast, aifm in rows:
        assert with_b >= without_b * 0.98  # batching never hurts
        if aifm is not None:
            assert with_b > aifm  # AIFM cannot batch across operators
    # batching helps somewhere in the sweep (in this cost model element
    # loops are DRAM-latency-bound, so the saved messages show up as a
    # small consistent gain rather than the paper's larger one; see
    # EXPERIMENTS.md)
    assert any(wb > wo * 1.01 for _, wb, wo, _, _ in rows)
