"""Section 6.1 text: analysis-scope reduction and compile time.

Paper numbers: profiling narrows MCF's analysis from 1.8K LoC to three
functions (0.3K LoC) and GPT-2's from 1000+ allocation sites to 122;
analysis+compilation finishes in seconds.  We report our analogues:
functions analyzed vs total, allocation sites converted vs total, and the
wall-clock time of one full compile.
"""

import time

from benchmarks.common import COST, record
from repro.core import MiraController
from repro.workloads import make_dataframe_workload, make_mcf_workload


def test_scope_reduction(benchmark):
    def experiment():
        rows = []
        for make in (make_dataframe_workload, make_mcf_workload):
            wl = make()
            local = wl.footprint_bytes() // 3
            t0 = time.perf_counter()
            program = MiraController(
                wl.build_module, COST, local, data_init=wl.data_init,
                max_iterations=1,
            ).optimize()
            wall = time.perf_counter() - t0
            rows.append(
                (
                    wl.name,
                    program.functions_analyzed,
                    program.functions_total,
                    program.alloc_sites_selected,
                    program.alloc_sites_total,
                    wall,
                )
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Section 6.1: analysis-scope reduction"]
    text.append(
        f"{'workload':>12} | {'funcs analyzed/total':>20} | "
        f"{'sites selected/total':>20} | {'compile+profile s':>18}"
    )
    for name, fa, ft, ss, st_, wall in rows:
        text.append(
            f"{name:>12} | {f'{fa}/{ft}':>20} | {f'{ss}/{st_}':>20} | {wall:>18.2f}"
        )
    record("scope_reduction", "\n".join(text))
    for name, fa, ft, ss, st_, wall in rows:
        assert fa <= ft
        assert ss <= st_
        # the profiling-guided pipeline runs in seconds, like the paper's
        assert wall < 120
    # DataFrame: profiling narrowed the function scope below "all"
    df = rows[0]
    assert df[1] < df[2]
