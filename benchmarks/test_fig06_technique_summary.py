"""Fig. 6: effect of Mira techniques on the running example.

Adds techniques cumulatively on top of the all-swap baseline: cache
sections -> +prefetch -> +eviction hints -> +read/write opt -> full
(+dereference elision).
"""

from benchmarks.common import COST, cached_native_ns, planned, record, run_with_plan
from repro.bench.reporting import format_series
from repro.workloads import make_graph_workload

RATIO = 0.25

STACKS = [
    ("swap only", None),
    ("+sections", {"convert"}),
    ("+prefetch", {"convert", "prefetch"}),
    ("+evict hints", {"convert", "prefetch", "evict"}),
    ("+read/write", {"convert", "prefetch", "evict", "readwrite"}),
    ("full (+elision)", {"convert", "prefetch", "evict", "readwrite", "native", "batching"}),
]


def test_fig06_technique_summary(benchmark):
    wl = make_graph_workload()
    native = cached_native_ns(wl)
    local = int(wl.footprint_bytes() * RATIO)

    def experiment():
        src, plan, swap_result = planned(wl, local)
        rows = []
        for label, options in STACKS:
            if options is None:
                rows.append((label, native / swap_result.elapsed_ns))
                continue
            variant = plan.without_options(*(plan.options - frozenset(options)))
            result = run_with_plan(src, variant, local, wl.data_init)
            wl.verify_results(result.results)
            rows.append((label, native / result.elapsed_ns))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(
        "fig06",
        format_series(
            "Fig. 6: Mira techniques on the graph example (25% local memory)",
            [r[0] for r in rows],
            [r[1] for r in rows],
            "configuration",
            "normalized perf",
        ),
    )
    by = dict(rows)
    # sections alone already beat swap; the full stack beats sections alone
    assert by["+sections"] > by["swap only"]
    assert by["full (+elision)"] > by["+sections"]
    assert by["full (+elision)"] >= max(v for k, v in rows if k != "full (+elision)") * 0.95
