"""Hybrid path-switch benchmark CLI.

Runs both halves of :mod:`repro.bench.hybrid` -- the five compiled IR
workloads on fastswap/aifm/mira/hybrid, and the trace-frontend scenario
corpus on fastswap/aifm/mira-set/hybrid -- prints the virtual-time
matrices with the acceptance summary (hybrid vs the better of
fastswap/aifm, plus every applied mid-run ``path.switch``), and writes
``BENCH_hybrid.json`` at the repo root.  Every number is virtual time
under seeded inputs, so the emitted report is bit-deterministic and
regression-gated by ``repro.obs.regress`` (``hybrid.*`` metrics).

Run with::

    PYTHONPATH=src:. python benchmarks/hybrid_smoke.py [--workloads ...]

This file is deliberately not named ``test_*``: it is a benchmark script,
not part of the tier-1 suite.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import time

from repro.bench.hybrid import IR_SYSTEMS, RATIO, TRACE_SYSTEMS, measure_all
from repro.bench.prefetch import WORKLOADS
from repro.workloads.trace import SCENARIOS

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hybrid.json"


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workloads", nargs="*", default=list(WORKLOADS))
    ap.add_argument("--scenarios", nargs="*", default=sorted(SCENARIOS))
    ap.add_argument("--ratio", type=float, default=RATIO)
    ap.add_argument(
        "--out", type=pathlib.Path, default=OUT_PATH,
        help="output JSON path (default: BENCH_hybrid.json at the repo root)",
    )
    args = ap.parse_args()

    t0 = time.perf_counter()
    sweep = measure_all(
        workloads=args.workloads, scenarios=args.scenarios, ratio=args.ratio
    )
    wall_s = round(time.perf_counter() - t0, 3)

    report: dict = {
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "wall_s": wall_s,
        **sweep,
    }

    ir_by_cell = {(c["workload"], c["system"]): c for c in sweep["ir_cells"]}
    width = max(len(w) for w in args.workloads) + 2
    header = "workload".ljust(width) + "".join(s.rjust(14) for s in IR_SYSTEMS)
    print(header)
    print("-" * len(header))
    for wl in args.workloads:
        row = wl.ljust(width)
        for sy in IR_SYSTEMS:
            cell = ir_by_cell[(wl, sy)]
            row += (
                "        failed" if cell.get("failed")
                else f"{cell['elapsed_ns']:>14,.0f}"
            )
        acc = sweep["acceptance"][wl]
        verdict = "wins" if acc["hybrid_wins"] else "LOSES"
        print(row + f"   hybrid {verdict} ({acc['switches']} switches)")

    tr_by_cell = {(c["scenario"], c["system"]): c for c in sweep["trace_cells"]}
    width = max(len(s) for s in args.scenarios) + 2
    header = "scenario".ljust(width) + "".join(
        s.rjust(14) for s in TRACE_SYSTEMS
    )
    print("\n" + header)
    print("-" * len(header))
    for sc in args.scenarios:
        row = sc.ljust(width)
        for sy in TRACE_SYSTEMS:
            row += f"{tr_by_cell[(sc, sy)]['elapsed_ns']:>14,.0f}"
        n = len(tr_by_cell[(sc, "hybrid")].get("switches", []))
        print(row + f"   {n} switches")

    if sweep["midrun_switches"]:
        print("\nmid-run switches (trace corpus):")
        for entry in sweep["midrun_switches"]:
            for sw in entry["switches"]:
                print(
                    f"  {entry['scenario']:<14} {sw['dir']:<8} at "
                    f"t={sw['t']:,.0f} ns  (miss={sw['miss']:.3f}, "
                    f"amp={sw['amp']:.1f})"
                )

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
