"""Fig. 22 (assigned; see DESIGN.md): function offloading.

The offload candidate is MCF's pointer-chasing update: its accesses are
value-dependent (unprefetchable), so running it locally at small memory
means a network round trip per hop, while running it *at* the far-memory
node makes every hop a local access (paper section 4.8: offload
computation-light functions whose data already lives in far memory).
"""

from dataclasses import replace

from benchmarks.common import COST, cached_native_ns, planned, record, run_with_plan
from repro.analysis.offload import decide_offload
from repro.workloads import make_mcf_workload

RATIOS = [0.2, 0.4]


def test_fig22_offload(benchmark):
    wl = make_mcf_workload(num_nodes=8192, num_arcs=8192, chases=192)
    native = cached_native_ns(wl)

    def experiment():
        rows = []
        decision = None
        for ratio in RATIOS:
            local = int(wl.footprint_bytes() * ratio)
            src, plan, swap_result = planned(wl, local)
            no_off = run_with_plan(src, plan, local, wl.data_init)
            off_plan = replace(plan, offload_functions=["chase_update"])
            off = run_with_plan(src, off_plan, local, wl.data_init)
            wl.verify_results(off.results)
            rows.append((ratio, native / no_off.elapsed_ns, native / off.elapsed_ns))
            if decision is None:
                # the analysis itself: is offloading predicted to pay?
                compiled_src = src.clone()
                from repro.transforms import convert_to_remote

                convert_to_remote(compiled_src, plan.converted_sites)
                decision = decide_offload(
                    compiled_src.get("chase_update"),
                    compiled_src,
                    COST,
                    no_off.profiler,
                    far_traffic_bytes=64.0,
                )
        return rows, decision

    rows, decision = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 22: offloading the pointer-chase function (MCF)"]
    text.append(f"{'local':>8} | {'local exec':>10} | {'offloaded':>10}")
    for ratio, no_off, off in rows:
        text.append(f"{ratio:>7.0%} | {no_off:>10.3f} | {off:>10.3f}")
    text.append(f"analysis decision: {decision.reason} -> offload={decision.offload}")
    record("fig22", "\n".join(text))
    # offloading the chase wins at small local memory
    assert rows[0][2] > rows[0][1]
    assert decision.candidate
