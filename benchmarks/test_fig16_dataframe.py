"""Fig. 16: overall DataFrame performance vs local-memory size.

Paper result: Mira beats FastSwap/Leap (which lack per-pattern sections)
and AIFM (whose per-dereference overhead keeps it far below the others
even at 100% local memory).
"""

from benchmarks.common import record, run_sweep
from repro.bench.reporting import format_sweep_table
from repro.workloads import make_dataframe_workload

RATIOS = [0.2, 0.4, 0.6, 0.8, 1.0]


def test_fig16_dataframe(benchmark):
    def experiment():
        return run_sweep(make_dataframe_workload(), RATIOS)

    sweep = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record("fig16", format_sweep_table(sweep, "Fig. 16: DataFrame, normalized performance"))
    small = min(RATIOS)
    assert (
        sweep.get("mira", small).normalized_perf
        > 1.5 * sweep.get("fastswap", small).normalized_perf
    )
    # AIFM is slow even at full local memory (dereference overhead)
    assert sweep.get("aifm", 1.0).normalized_perf < 0.5
    assert all(p.normalized_perf > 0.5 for p in sweep.series("mira"))
