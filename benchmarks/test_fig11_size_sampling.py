"""Fig. 11: per-section cache overhead at sampled section sizes.

Paper result: the sequentially accessed edge section reaches its best
overhead at a tiny size and stays flat; the indirectly accessed node
section and the uniformly random third array improve non-linearly with
size.
"""

from dataclasses import replace

from benchmarks.common import planned, record, run_with_plan
from repro.core.plan import SectionPlan
from repro.workloads import make_graph_workload

RATIO = 0.5
FRACTIONS = [0.1, 0.25, 0.5, 0.75, 1.0]


def _resized(plan, name, size):
    sections = []
    for sp in plan.sections:
        if sp.config.name == name:
            size_ = max(sp.config.line_size * 2, size)
            sections.append(sp.with_size(size_))
        else:
            # park other sections at their minimum so the sampled section's
            # behaviour is isolated (how the controller samples too)
            sections.append(sp.with_size(sp.config.line_size * 8))
    return replace(plan, sections=sections)


def test_fig11_size_sampling(benchmark):
    wl = make_graph_workload(with_random_array=True)
    local = int(wl.footprint_bytes() * RATIO)

    def experiment():
        src, plan, _ = planned(wl, local)
        curves = {}
        for sp in plan.sections:
            label = "+".join(sp.object_names)
            full = sp.config.size_bytes
            points = []
            for frac in FRACTIONS:
                trial = _resized(plan, sp.config.name, int(full * frac))
                result = run_with_plan(src, trial, local, wl.data_init)
                stats = result.memsys.collect_section_stats()[sp.config.name]
                points.append(
                    (frac, (stats["overhead_ns"] + stats["miss_wait_ns"]) / 1e6)
                )
            curves[label] = points
        return curves

    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 11: section overhead (ms) vs sampled section size"]
    for label, points in curves.items():
        text.append(f"  section [{label}]:")
        for frac, ms in points:
            text.append(f"    {frac:>5.0%} of planned size -> {ms:8.3f} ms")
    record("fig11", "\n".join(text))
    edges = next(v for k, v in curves.items() if "edges" in k)
    # the streaming section is already near-flat at small sizes
    assert edges[0][1] < 3 * edges[-1][1] + 0.05
    # a non-streaming section improves substantially with size
    nodes = next(v for k, v in curves.items() if "nodes" in k)
    assert nodes[-1][1] < nodes[0][1]
