"""Fig. 10: cache-structure choice for the node section.

Paper result: at large local memory, full associativity pays a constant
lookup overhead over set-associative/direct mapping; as memory shrinks,
associativity wins because conflict misses dominate.
"""

from dataclasses import replace

from benchmarks.common import cached_native_ns, planned, record, run_with_plan
from repro.cache.config import Structure
from repro.core.plan import SectionPlan
from repro.workloads import make_graph_workload

RATIOS = [0.15, 0.3, 0.6]
STRUCTURES = [
    ("direct", Structure.DIRECT, 1),
    ("set-assoc", Structure.SET_ASSOCIATIVE, 8),
    ("full-assoc", Structure.FULLY_ASSOCIATIVE, 1),
]


def _with_structure(plan, section_name, structure, ways):
    sections = []
    for sp in plan.sections:
        if sp.config.name == section_name:
            cfg = replace(sp.config, structure=structure, ways=ways)
            sections.append(SectionPlan(cfg, list(sp.object_names), sp.per_thread))
        else:
            sections.append(sp)
    return replace(plan, sections=sections)


def test_fig10_structure(benchmark):
    wl = make_graph_workload()
    native = cached_native_ns(wl)

    def experiment():
        rows = []
        for ratio in RATIOS:
            local = int(wl.footprint_bytes() * ratio)
            src, plan, _ = planned(wl, local)
            node_sec = next(
                sp.config.name for sp in plan.sections if "nodes" in sp.object_names
            )
            row = {"ratio": ratio}
            for label, structure, ways in STRUCTURES:
                result = run_with_plan(
                    src, _with_structure(plan, node_sec, structure, ways),
                    local, wl.data_init,
                )
                wl.verify_results(result.results)
                row[label] = native / result.elapsed_ns
            rows.append(row)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 10: node-section structure, normalized performance"]
    text.append(f"{'local':>8} | {'direct':>10} | {'set-assoc':>10} | {'full-assoc':>10}")
    for row in rows:
        text.append(
            f"{row['ratio']:>7.0%} | {row['direct']:>10.3f} | "
            f"{row['set-assoc']:>10.3f} | {row['full-assoc']:>10.3f}"
        )
    record("fig10", "\n".join(text))
    small, large = rows[0], rows[-1]
    # at small memory, associativity beats direct mapping (conflicts)
    assert max(small["set-assoc"], small["full-assoc"]) >= small["direct"]
    # at large memory, direct/set-assoc don't trail full-assoc by much
    # (full associativity's lookup overhead is the constant cost)
    assert large["set-assoc"] >= large["full-assoc"] * 0.95
