"""Fig. 5: overall graph-traversal performance vs local-memory size.

Paper result: Mira stays near native across all local-memory sizes while
FastSwap/Leap degrade steeply as memory shrinks (up to 18x gap) and AIFM
sits flat but well below the others' best.
"""

from benchmarks.common import record, run_sweep
from repro.bench.reporting import format_sweep_table
from repro.workloads import make_graph_workload

RATIOS = [0.2, 0.35, 0.5, 0.75, 1.0]


def test_fig05_graph_overall(benchmark):
    def experiment():
        return run_sweep(make_graph_workload(), RATIOS)

    sweep = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record("fig05", format_sweep_table(sweep, "Fig. 5: graph traversal, normalized performance"))
    # shape assertions: Mira dominates the swap systems at small memory...
    small = min(RATIOS)
    mira_small = sweep.get("mira", small).normalized_perf
    fast_small = sweep.get("fastswap", small).normalized_perf
    assert mira_small > 5 * fast_small
    # ...and everything but AIFM converges near native at full memory
    for system in ("mira", "fastswap", "leap"):
        assert sweep.get(system, 1.0).normalized_perf > 0.7
    assert sweep.get("aifm", 1.0).normalized_perf < 0.5
    # Mira's curve is the flattest
    mira = [p.normalized_perf for p in sweep.series("mira")]
    assert min(mira) > 0.6
