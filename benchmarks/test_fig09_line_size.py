"""Fig. 9: cache performance overhead vs cache-line size, per section.

Paper result: the randomly (indirectly) accessed node section wants the
smallest line that holds its accessed unit; the sequential edge section
improves with larger lines up to the network's efficient transfer size
(~2 KB knee).
"""

from dataclasses import replace

from benchmarks.common import planned, record, run_with_plan
from repro.core.plan import SectionPlan
from repro.workloads import make_graph_workload

RATIO = 0.35
LINES = [64, 128, 256, 512, 1024, 2048, 4096]


def _with_line(plan, section_name: str, line: int):
    sections = []
    for sp in plan.sections:
        if sp.config.name == section_name:
            cfg = replace(
                sp.config,
                line_size=line,
                size_bytes=max(sp.config.size_bytes, line * 4),
                fetch_bytes=None,
            )
            sections.append(SectionPlan(cfg, list(sp.object_names), sp.per_thread))
        else:
            sections.append(sp)
    return replace(plan, sections=sections)


def _section_overhead_ms(result, name: str) -> float:
    stats = result.memsys.collect_section_stats()[name]
    return (stats["overhead_ns"] + stats["miss_wait_ns"]) / 1e6


def test_fig09_line_size(benchmark):
    wl = make_graph_workload()
    local = int(wl.footprint_bytes() * RATIO)

    def experiment():
        src, plan, _ = planned(wl, local)
        node_sec = next(
            sp.config.name for sp in plan.sections if "nodes" in sp.object_names
        )
        edge_sec = next(
            sp.config.name for sp in plan.sections if "edges" in sp.object_names
        )
        node_rows, edge_rows = [], []
        for line in LINES:
            rn = run_with_plan(src, _with_line(plan, node_sec, line), local, wl.data_init)
            node_rows.append((line, _section_overhead_ms(rn, node_sec)))
            re_ = run_with_plan(src, _with_line(plan, edge_sec, line), local, wl.data_init)
            edge_rows.append((line, _section_overhead_ms(re_, edge_sec)))
        return node_rows, edge_rows

    node_rows, edge_rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 9: cache overhead (ms) vs line size"]
    text.append(f"{'line B':>8} | {'node section':>12} | {'edge section':>12}")
    for (line, n), (_, e) in zip(node_rows, edge_rows):
        text.append(f"{line:>8} | {n:>12.3f} | {e:>12.3f}")
    record("fig09", "\n".join(text))
    node = dict(node_rows)
    edge = dict(edge_rows)
    # node section: small lines beat big lines (amplification hurts)
    assert node[64] < node[4096]
    # edge section: the 2 KB line beats tiny lines (per-line costs amortize)
    assert edge[2048] < edge[64]
