"""Fig. 19: run-time performance overhead at full local memory.

Paper result: Mira's compiled code adds little overhead over native
(dereference elision turns most accesses into native loads), while AIFM
pays its per-dereference library cost on every remotable access.
"""

from benchmarks.common import (
    COST,
    cached_native_ns,
    record,
    run_sweep,
)
from repro.bench.harness import mira_point, system_point
from repro.workloads import (
    make_array_sum_workload,
    make_dataframe_workload,
    make_graph_workload,
    make_mcf_workload,
)

WORKLOADS = [
    make_array_sum_workload,
    make_graph_workload,
    make_dataframe_workload,
    make_mcf_workload,
]


def test_fig19_runtime_overhead(benchmark):
    def experiment():
        rows = []
        for make in WORKLOADS:
            wl = make()
            native = cached_native_ns(wl)
            mira, _ = mira_point(wl, COST, 1.0, native)
            aifm = system_point(wl, "aifm", COST, 1.0, native)
            rows.append(
                (
                    wl.name,
                    1.0 / mira.normalized_perf,
                    None if aifm.failed else 1.0 / aifm.normalized_perf,
                )
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 19: run-time overhead at 100% local memory (x over native)"]
    text.append(f"{'workload':>16} | {'mira':>8} | {'aifm':>8}")
    for name, mira, aifm in rows:
        aifm_s = f"{aifm:>8.2f}" if aifm is not None else f"{'FAIL':>8}"
        text.append(f"{name:>16} | {mira:>8.2f} | {aifm_s}")
    record("fig19", "\n".join(text))
    for name, mira, aifm in rows:
        assert mira < 1.6  # Mira close to native at full memory
        if aifm is not None:
            assert aifm > mira  # AIFM's deref overhead always shows
