"""Chaos smoke benchmark: the five paper workloads under a fault-plan
matrix.

Each cell runs one workload on one memory system twice -- healthy, then
under a seeded :class:`repro.faults.FaultPlan` -- and asserts the
robustness criterion: the faulty run completes with correct results and
its virtual-time slowdown stays within a bounded factor of the healthy
run.  Retries, giveups, breaker trips, and graceful-degradation actions
are reported per cell, and the whole matrix is written to
``BENCH_chaos.json`` at the repo root.

Run with::

    PYTHONPATH=src:. python benchmarks/chaos_smoke.py \
        [--systems fastswap mira] [--seeds 1 2] \
        [--intensities light medium] [--max-slowdown 10]

This file is deliberately not named ``test_*``: it is a benchmark script
(CI runs it as a separate step); the tier-1 chaos smoke lives in
``tests/test_chaos.py``.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import sys
import time

from repro.faults.chaos import (
    CHAOS_WORKLOADS,
    DEFAULT_MAX_SLOWDOWN,
    default_matrix,
    run_chaos_matrix,
)

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--systems", nargs="+", default=["fastswap", "mira"])
    ap.add_argument("--seeds", nargs="+", type=int, default=[1, 2])
    ap.add_argument("--intensities", nargs="+", default=["light", "medium"])
    ap.add_argument("--max-slowdown", type=float, default=DEFAULT_MAX_SLOWDOWN)
    ap.add_argument(
        "--workloads", nargs="+", default=sorted(CHAOS_WORKLOADS),
        help="subset of the five paper workloads",
    )
    args = ap.parse_args()

    plans = default_matrix(seeds=tuple(args.seeds), intensities=tuple(args.intensities))
    t0 = time.perf_counter()
    points, violations = run_chaos_matrix(
        workloads=args.workloads,
        systems=tuple(args.systems),
        plans=plans,
        max_slowdown=args.max_slowdown,
    )
    wall = time.perf_counter() - t0

    rows = [p.row() for p in points]
    for row in rows:
        print(json.dumps(row))
    retries = sum(r["retries"] for r in rows)
    degrades = sum(r["degrades"] for r in rows)
    worst = max((r["slowdown"] for r in rows), default=0.0)
    print(
        f"\n{len(rows)} cells, {retries} retries, {degrades} degradations, "
        f"worst slowdown {worst:.2f}x (bound {args.max_slowdown:.1f}x), "
        f"{wall:.1f} s wall"
    )

    report = {
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "matrix": {
            "workloads": args.workloads,
            "systems": args.systems,
            "seeds": args.seeds,
            "intensities": args.intensities,
            "max_slowdown": args.max_slowdown,
        },
        "cells": rows,
        "summary": {
            "cells": len(rows),
            "retries": retries,
            "degrades": degrades,
            "worst_slowdown": worst,
            "violations": violations,
            "wall_s": round(wall, 2),
        },
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    if violations:
        print("\nROBUSTNESS VIOLATIONS:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
