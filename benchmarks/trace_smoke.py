"""Trace-replay benchmark CLI.

Runs the scenario x system sweep in :mod:`repro.bench.tracebench` (the
pinned synthetic-trace corpus replayed through every memory system at
equal local-memory ratio), prints the virtual-time matrix with
per-scenario winners, and writes ``BENCH_trace.json`` at the repo root.
Every number is virtual time under seeded generators, so the emitted
report is bit-deterministic and regression-gated by
``repro.obs.regress`` (``trace.*`` metrics).

Run with::

    PYTHONPATH=src:. python benchmarks/trace_smoke.py [--scenarios ...]

This file is deliberately not named ``test_*``: it is a benchmark script,
not part of the tier-1 suite.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import time

from repro.bench.tracebench import RATIO, SYSTEMS, measure_all
from repro.workloads.trace import SCENARIOS

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_trace.json"


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scenarios", nargs="*", default=sorted(SCENARIOS))
    ap.add_argument("--systems", nargs="*", default=list(SYSTEMS))
    ap.add_argument("--ratio", type=float, default=RATIO)
    ap.add_argument(
        "--out", type=pathlib.Path, default=OUT_PATH,
        help="output JSON path (default: BENCH_trace.json at the repo root)",
    )
    args = ap.parse_args()

    t0 = time.perf_counter()
    sweep = measure_all(
        scenarios=args.scenarios, systems=args.systems, ratio=args.ratio
    )
    wall_s = round(time.perf_counter() - t0, 3)

    report: dict = {
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "wall_s": wall_s,
        **sweep,
    }

    width = max(len(s) for s in args.scenarios) + 2
    header = "scenario".ljust(width) + "".join(s.rjust(14) for s in args.systems)
    print(header)
    print("-" * len(header))
    by_cell = {(c["scenario"], c["system"]): c for c in sweep["cells"]}
    for sc in args.scenarios:
        row = sc.ljust(width)
        for sy in args.systems:
            row += f"{by_cell[(sc, sy)]['elapsed_ns']:>14,.0f}"
        print(row + f"   winner: {sweep['winners'][sc]}")
    print("\nelapsed_ns per cell (lower is better); miss rates:")
    for sc in args.scenarios:
        rates = "  ".join(
            f"{sy}={by_cell[(sc, sy)]['miss_rate']:.3f}" for sy in args.systems
        )
        print(f"  {sc:<{width}} {rates}")

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
