"""Section 6.1 text: run-time profiling overhead.

Paper numbers: Mira's coarse-grained (function/allocation-site-level)
profiling adds 0.4%-0.7% to execution time, versus 3.3%-978% for prior
fine-grained profilers.
"""

from benchmarks.common import COST, record
from repro.core import MiraPlan, compile_program, run_plan
from repro.workloads import make_dataframe_workload, make_graph_workload, make_mcf_workload


def test_profiling_overhead(benchmark):
    def experiment():
        rows = []
        for make in (make_graph_workload, make_dataframe_workload, make_mcf_workload):
            wl = make()
            local = wl.footprint_bytes() // 2
            src = wl.build_module()
            plain = run_plan(
                compile_program(src, MiraPlan.swap_only(), COST, instrument=False),
                COST, local, wl.data_init,
            )
            instrumented = run_plan(
                compile_program(src, MiraPlan.swap_only(), COST, instrument=True),
                COST, local, wl.data_init,
            )
            overhead = (
                instrumented.elapsed_ns - plain.elapsed_ns
            ) / plain.elapsed_ns
            rows.append((wl.name, overhead))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Section 6.1: profiling overhead (instrumented vs plain)"]
    for name, overhead in rows:
        text.append(f"  {name:>12}: {overhead:8.4%}")
    record("profiling_overhead", "\n".join(text))
    for name, overhead in rows:
        assert -0.001 <= overhead < 0.02  # sub-2%, the paper's class
