"""Fig. 24: read-only multi-threading (GPT-2 inference).

Paper result: Mira scales much better than FastSwap with threads; private
per-thread cache sections beat the unoptimized shared configuration;
FastSwap is limited by Linux swap-path synchronization.
"""

from dataclasses import replace

from benchmarks.common import COST, record
from repro.bench.harness import mira_point, native_time_ns, system_point
from repro.core import MiraController, run_plan
from repro.workloads import make_gpt2_workload

THREADS = [1, 2, 4, 8]
RATIO = 0.6
#: the paper's CPU inference is strongly compute-bound relative to the
#: link; use the matching regime for the scaling study
GPT2_ARGS = dict(layers=24, passes=2, compute_per_byte_ns=1.0)


def test_fig24_mt_gpt2(benchmark):
    native1 = native_time_ns(make_gpt2_workload(num_threads=1, **GPT2_ARGS), COST)

    def experiment():
        rows = []
        for T in THREADS:
            wl = make_gpt2_workload(num_threads=T, **GPT2_ARGS)
            fast = system_point(wl, "fastswap", COST, RATIO, native1, num_threads=T)
            mira, program = mira_point(
                wl, COST, RATIO, native1, num_threads=T
            )
            # Mira-unopt: same plan but shared (not per-thread) sections
            local = int(wl.footprint_bytes() * RATIO)
            unopt_sections = [
                replace(sp, per_thread=0) for sp in program.plan.sections
            ]
            unopt_plan = replace(program.plan, sections=unopt_sections)
            from repro.core import compile_program

            unopt = run_plan(
                compile_program(wl.build_module(), unopt_plan, COST),
                COST, local, wl.data_init, num_threads=T,
            )
            unopt_ns = unopt.profiler.regions.get("measured", unopt.elapsed_ns)
            rows.append(
                (T, fast.normalized_perf, native1 / unopt_ns, mira.normalized_perf)
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = ["Fig. 24: GPT-2 multi-threaded scaling (perf vs 1-thread native)"]
    text.append(f"{'threads':>8} | {'fastswap':>9} | {'mira-unopt':>10} | {'mira':>9}")
    for T, fs, un, mi in rows:
        text.append(f"{T:>8} | {fs:>9.3f} | {un:>10.3f} | {mi:>9.3f}")
    record("fig24", "\n".join(text))
    by_t = {r[0]: r for r in rows}
    # Mira scales with threads; FastSwap does not
    assert by_t[4][3] > 1.5 * by_t[1][3]
    assert by_t[4][1] < 1.2 * by_t[1][1]
    # Mira beats FastSwap at every thread count
    for T, fs, un, mi in rows:
        assert mi > fs
