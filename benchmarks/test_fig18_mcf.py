"""Fig. 18: MCF vs local-memory size, including AIFM's collapse.

Paper results: (1) Mira matches swap at large memory (it configures the
swap section for the pointer-heavy main arrays) and wins below ~70% by
switching to a set-associative section with pointer-chasing prefetch;
(2) AIFM fails to execute below full memory, is orders of magnitude worse
at full memory, and recovers only slowly with memory *beyond* full size
(its remotable-pointer metadata crowds out data).
"""

from benchmarks.common import record, run_sweep
from repro.bench.reporting import format_sweep_table
from repro.workloads import make_mcf_workload

RATIOS = [0.2, 0.4, 0.7, 1.0, 1.4, 1.8]


def test_fig18_mcf(benchmark):
    def experiment():
        return run_sweep(make_mcf_workload(), RATIOS)

    sweep = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record("fig18", format_sweep_table(sweep, "Fig. 18: MCF, normalized performance"))
    # Mira wins big at small memory
    assert (
        sweep.get("mira", 0.2).normalized_perf
        > 3 * sweep.get("fastswap", 0.2).normalized_perf
    )
    # Mira ~ swap at full memory (rolls back to the swap configuration or
    # matches it)
    assert (
        abs(
            sweep.get("mira", 1.0).normalized_perf
            - sweep.get("fastswap", 1.0).normalized_perf
        )
        < 0.15
    )
    # AIFM fails below full memory...
    assert sweep.get("aifm", 0.2).failed
    assert sweep.get("aifm", 0.4).failed
    # ...and is orders of magnitude worse at/above full memory
    aifm_full = sweep.get("aifm", 1.0)
    assert not aifm_full.failed
    assert aifm_full.normalized_perf < 0.1
    aifm_huge = sweep.get("aifm", 1.8)
    assert not aifm_huge.failed
    assert aifm_huge.normalized_perf < 0.5  # still far below the others
