"""Wall-clock smoke benchmark for the execution engine.

Measures, on the Fig. 5 graph workload:

* interpreter throughput (IR ops/second) under the reference, the
  block-compiled, and the source-codegen engine;
* the Fig. 5 single-point run (native + fastswap@0.2 + mira@0.2) under
  all three engines, repeats interleaved across engines so host-load
  drift cancels out of the ratios;
* the full Fig. 5 sweep, serial vs ``workers=4``, with a determinism
  check (parallel results must equal serial results exactly).

Everything here is *wall-clock* (simulator speed); virtual-time results
are asserted identical across engines, never compared for speed.  The
numbers are written to ``BENCH_engine.json`` at the repo root so future
performance work has a trajectory to regress against.

Run with::

    PYTHONPATH=src:. python benchmarks/perf_smoke.py [--workers N] [--repeats N]

This file is deliberately not named ``test_*``: it is a benchmark script,
not part of the tier-1 suite.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import time

from repro.baselines import NativeMemory
from repro.bench.harness import (
    ModuleMemo,
    mira_point,
    native_time_ns,
    sweep_systems,
    system_point,
)
from repro.bench.harness import BASELINE_SYSTEMS
from repro.core import run_on_baseline
from repro.memsim.cost_model import CostModel
from repro.obs import TelemetryCollector, Tracer
from repro.workloads import make_graph_workload

COST = CostModel()
FIG05_RATIOS = [0.2, 0.35, 0.5, 0.75, 1.0]
SINGLE_RATIO = 0.2
OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: the pre-engine seed (commit ca41480) measured on the same container
#: (1 CPU, best of 3) -- static context for the speedup-vs-seed numbers
SEED_BASELINE_WALL_S = {
    "commit": "ca41480",
    "native": 0.152,
    "fastswap@0.2": 0.302,
    "leap@0.2": 0.435,
    "aifm@0.2": 0.347,
    "mira@0.2": 3.250,
}


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _ir_op_estimate(breakdown: dict[str, float]) -> int:
    """Executed-op proxy derived from the virtual-time breakdown: every op
    charges ``cpu_op_ns`` of compute and every load/store adds one DRAM
    event, so compute/cpu_op_ns + dram/dram_access_ns counts op executions
    without instrumenting the hot loop."""
    ops = breakdown.get("compute", 0.0) / COST.cpu_op_ns
    ops += breakdown.get("dram", 0.0) / COST.dram_access_ns
    return round(ops)


def measure_throughput(repeats: int) -> dict:
    wl = make_graph_workload()
    out: dict = {}
    for engine in ("reference", "compiled", "codegen"):
        os.environ["REPRO_ENGINE"] = engine
        memo = ModuleMemo(wl)
        memsys = []

        def run():
            memsys.append(
                run_on_baseline(
                    memo.module,
                    NativeMemory(COST, 2 * memo.footprint_bytes + (1 << 20)),
                    wl.data_init,
                    entry=wl.entry,
                )
            )

        wall = _best_of(run, repeats)
        ops = _ir_op_estimate(memsys[-1].breakdown)
        out[engine] = {
            "wall_s": round(wall, 4),
            "ir_ops": ops,
            "ops_per_sec": round(ops / wall),
        }
    out["speedup"] = round(
        out["reference"]["wall_s"] / out["compiled"]["wall_s"], 2
    )
    out["codegen_speedup"] = round(
        out["reference"]["wall_s"] / out["codegen"]["wall_s"], 2
    )
    out["codegen_vs_compiled"] = round(
        out["compiled"]["wall_s"] / out["codegen"]["wall_s"], 2
    )
    return out


def measure_single_point(repeats: int) -> dict:
    """Fig. 5 single-point wall time under all three engines.

    Repeats are interleaved round-robin across engines (engine A rep 1,
    engine B rep 1, ... engine A rep 2, ...) so slow drift in host load
    -- shared CI boxes speed up and slow down over minutes -- cancels
    out of the engine-vs-engine ratios instead of biasing whichever
    engine happened to run in the quiet window.
    """
    wl = make_graph_workload()
    engines = ("reference", "compiled", "codegen")
    out: dict = {}
    elapsed: dict[str, dict[str, float]] = {}
    memos: dict[str, ModuleMemo] = {}
    natives: dict[str, float] = {}
    for engine in engines:
        os.environ["REPRO_ENGINE"] = engine
        memos[engine] = ModuleMemo(wl)
        natives[engine] = native_time_ns(wl, COST, memo=memos[engine])
        elapsed[engine] = {"native": natives[engine]}

    def phases(engine: str) -> dict:
        memo, native_ns, seen = memos[engine], natives[engine], elapsed[engine]
        return {
            "native": lambda: native_time_ns(wl, COST, memo=memo),
            f"fastswap@{SINGLE_RATIO}": lambda: seen.__setitem__(
                "fastswap",
                system_point(
                    wl, "fastswap", COST, SINGLE_RATIO, native_ns, memo=memo
                ).elapsed_ns,
            ),
            f"mira@{SINGLE_RATIO}": lambda: seen.__setitem__(
                "mira",
                mira_point(wl, COST, SINGLE_RATIO, native_ns, memo=memo)[
                    0
                ].elapsed_ns,
            ),
        }

    fns = {engine: phases(engine) for engine in engines}
    best: dict[str, dict[str, float]] = {e: {} for e in engines}
    for name in next(iter(fns.values())):
        for _ in range(repeats):
            for engine in engines:
                os.environ["REPRO_ENGINE"] = engine
                t0 = time.perf_counter()
                fns[engine][name]()
                wall = time.perf_counter() - t0
                prev = best[engine].get(name, float("inf"))
                best[engine][name] = min(prev, wall)
    for engine in engines:
        out[engine] = {
            name: round(wall, 4) for name, wall in best[engine].items()
        }
    # virtual time must be engine-independent; speed is the only delta
    assert elapsed["reference"] == elapsed["compiled"] == elapsed["codegen"], (
        f"engines diverge in virtual time: {elapsed}"
    )
    # deterministic virtual times, hard-gated by repro.obs.regress
    out["virtual_ns"] = {
        "native": elapsed["compiled"]["native"],
        f"fastswap@{SINGLE_RATIO}": elapsed["compiled"]["fastswap"],
        f"mira@{SINGLE_RATIO}": elapsed["compiled"]["mira"],
    }
    out["total_reference_s"] = round(sum(out["reference"].values()), 4)
    out["total_compiled_s"] = round(sum(out["compiled"].values()), 4)
    out["total_codegen_s"] = round(sum(out["codegen"].values()), 4)
    out["speedup"] = round(out["total_reference_s"] / out["total_compiled_s"], 2)
    out["codegen_speedup"] = round(
        out["total_reference_s"] / out["total_codegen_s"], 2
    )
    out["codegen_vs_compiled"] = round(
        out["total_compiled_s"] / out["total_codegen_s"], 2
    )
    return out


def measure_tracing(repeats: int) -> dict:
    """Wall-clock cost of ``repro.obs`` tracing on a fault-heavy run
    (fastswap@0.2 on the Fig. 5 graph).

    ``disabled`` is the default path -- every subsystem's ``tracer`` is
    None and emission guards are single local ``is not None`` tests; it
    must be indistinguishable from the pre-obs numbers in
    ``BENCH_engine.json``.  ``enabled`` attaches a fresh Tracer per run
    and reports the full-trace overhead per recorded event.
    """
    os.environ["REPRO_ENGINE"] = "compiled"
    wl = make_graph_workload()
    memo = ModuleMemo(wl)
    local = max(4096, int(memo.footprint_bytes * SINGLE_RATIO))

    def run(tracer=None):
        return run_on_baseline(
            memo.module,
            BASELINE_SYSTEMS["fastswap"](COST, local),
            wl.data_init,
            entry=wl.entry,
            tracer=tracer,
        )

    tracers: list[Tracer] = []

    def run_traced():
        t = Tracer()
        tracers.append(t)
        run(tracer=t)

    # interleave disabled/enabled repeats so host-load drift cancels out
    # of the overhead ratio (same reasoning as measure_single_point)
    disabled = enabled = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        disabled = min(disabled, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_traced()
        enabled = min(enabled, time.perf_counter() - t0)
    events = len(tracers[-1])
    return {
        "disabled_s": round(disabled, 4),
        "enabled_s": round(enabled, 4),
        "events": events,
        "enabled_overhead": round(enabled / disabled, 3),
        "ns_per_event": round((enabled - disabled) * 1e9 / events)
        if events
        else None,
    }


def measure_telemetry(repeats: int) -> dict:
    """Wall-clock cost of the windowed telemetry collector
    (fastswap@0.2 on the Fig. 5 graph, 1 ms virtual windows).

    ``disabled`` runs with no collector -- boundary detection is one
    float compare against ``+inf`` per clock fold and the observe sites
    a single ``is not None`` test.  ``enabled`` attaches a fresh
    :class:`TelemetryCollector` per run.  Virtual time must be
    bit-identical either way (telemetry only reads the clock), and the
    acceptance budget for ``enabled_overhead`` is 1.05.
    """
    os.environ["REPRO_ENGINE"] = "compiled"
    wl = make_graph_workload()
    memo = ModuleMemo(wl)
    local = max(4096, int(memo.footprint_bytes * SINGLE_RATIO))

    def run(telemetry=None):
        return run_on_baseline(
            memo.module,
            BASELINE_SYSTEMS["fastswap"](COST, local),
            wl.data_init,
            entry=wl.entry,
            telemetry=telemetry,
        )

    collectors: list[TelemetryCollector] = []
    virtual: dict[str, float] = {}

    def run_plain():
        virtual["disabled"] = run().elapsed_ns

    def run_collected():
        tel = TelemetryCollector(window_ns=1_000_000.0)
        collectors.append(tel)
        virtual["enabled"] = run(telemetry=tel).elapsed_ns

    # The collector's true cost (~69 window snapshots + one list append
    # per miss) is a few percent of this run, well below the container's
    # load jitter (single rounds here swing +-30%, and the sign of a
    # min-of-N comparison flips between invocations).  Two estimates are
    # recorded: the *median of per-round paired ratios* for wall clock
    # (bursts land on both sides of a pair and cancel), and a
    # *deterministic* bound -- the exact increase in Python-level
    # function calls (cProfile call counts, identical on every run) --
    # which is immune to load and is the number the <=5% budget is
    # judged against.
    import cProfile
    import pstats

    def _call_count(fn) -> int:
        pr = cProfile.Profile()
        pr.enable()
        fn()
        pr.disable()
        return sum(v[0] for v in pstats.Stats(pr).stats.values())

    calls_disabled = _call_count(run)
    calls_enabled = _call_count(
        lambda: run(telemetry=TelemetryCollector(window_ns=1_000_000.0))
    )

    rounds = max(3 * repeats, 15)
    ratios: list[float] = []
    disabled = enabled = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        run_plain()
        d = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_collected()
        e = time.perf_counter() - t0
        disabled = min(disabled, d)
        enabled = min(enabled, e)
        ratios.append(e / d)
    assert virtual["disabled"] == virtual["enabled"], (
        f"telemetry perturbed virtual time: {virtual}"
    )
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    windows = len(collectors[-1])
    return {
        "disabled_s": round(disabled, 4),
        "enabled_s": round(enabled, 4),
        "rounds": rounds,
        "windows": windows,
        "virtual_ns_identical": True,
        "enabled_overhead": round(median_ratio, 3),
        "overhead_method": "median of per-round paired ratios",
        "added_calls": calls_enabled - calls_disabled,
        "added_calls_pct": round(
            100.0 * (calls_enabled - calls_disabled) / calls_disabled, 2
        ),
        "budget_pct": 5.0,
        "notes": (
            "wall-clock ratios on this container swing +-30% per round, "
            "far above the collector's real cost; added_calls_pct is the "
            "deterministic added-work bound (exact function-call delta, "
            "load-independent) and is the figure held to the <=5% budget"
        ),
    }


def measure_sweep(workers: int) -> dict:
    os.environ["REPRO_ENGINE"] = "compiled"
    wl = make_graph_workload()
    t0 = time.perf_counter()
    serial = sweep_systems(wl, COST, FIG05_RATIOS)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = sweep_systems(wl, COST, FIG05_RATIOS, workers=workers)
    parallel_s = time.perf_counter() - t0
    same = [
        (a.system, a.local_ratio, a.elapsed_ns, a.normalized_perf)
        for a in serial.points
    ] == [
        (b.system, b.local_ratio, b.elapsed_ns, b.normalized_perf)
        for b in parallel.points
    ]
    return {
        "ratios": FIG05_RATIOS,
        "systems": ["fastswap", "leap", "aifm", "mira"],
        "serial_s": round(serial_s, 3),
        "workers": workers,
        "parallel_s": round(parallel_s, 3),
        "parallel_reduction": round(serial_s / parallel_s, 2),
        "deterministic": same,
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--skip-sweep", action="store_true")
    args = ap.parse_args()

    report: dict = {
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "workload": "fig05 graph traversal (6000 edges, 2000 nodes)",
    }

    print("interpreter throughput (native run, all three engines)...")
    report["interpreter_throughput"] = measure_throughput(args.repeats)
    print(json.dumps(report["interpreter_throughput"], indent=2))

    print("\nFig. 5 single-point run (all three engines)...")
    report["single_point"] = measure_single_point(args.repeats)
    print(json.dumps(report["single_point"], indent=2))

    print("\ntracing overhead (fastswap@0.2, disabled vs full trace)...")
    report["tracing"] = measure_tracing(args.repeats)
    print(json.dumps(report["tracing"], indent=2))

    print("\ntelemetry overhead (fastswap@0.2, disabled vs 1ms windows)...")
    report["telemetry"] = measure_telemetry(args.repeats)
    print(json.dumps(report["telemetry"], indent=2))

    if not args.skip_sweep:
        print(f"\nfull Fig. 5 sweep, serial vs workers={args.workers}...")
        report["sweep"] = measure_sweep(args.workers)
        print(json.dumps(report["sweep"], indent=2))
        if os.cpu_count() == 1:
            report["sweep"]["note"] = (
                "measured on a 1-CPU container: process-parallel sweeps "
                "cannot beat serial here; the determinism check and the "
                "per-point plumbing are what this entry validates"
            )

    seed = dict(SEED_BASELINE_WALL_S)
    current = {
        "native": report["single_point"]["compiled"]["native"],
        f"fastswap@{SINGLE_RATIO}": report["single_point"]["compiled"][
            f"fastswap@{SINGLE_RATIO}"
        ],
        f"mira@{SINGLE_RATIO}": report["single_point"]["compiled"][
            f"mira@{SINGLE_RATIO}"
        ],
    }
    seed["speedup_vs_seed"] = {
        k: round(seed[k] / v, 2) for k, v in current.items() if k in seed
    }
    report["seed_baseline"] = seed

    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")


if __name__ == "__main__":
    main()
