"""Shared benchmark infrastructure.

Every ``test_figNN_*.py`` regenerates one of the paper's figures: it runs
the experiment on the simulator, prints the figure's rows/series, and
appends them to ``benchmarks/results/figNN.txt`` so EXPERIMENTS.md can
reference concrete numbers.

Native runs and Mira compilations are cached per workload within one
benchmark session (results are deterministic: virtual time, seeded data).
"""

from __future__ import annotations

import os
import pathlib

from repro.bench.harness import (
    ExperimentPoint,
    Sweep,
    effective_ns,
    mira_point,
    native_time_ns,
    sweep_systems,
    system_point,
)
from repro.bench.reporting import format_series, format_sweep_table
from repro.memsim.cost_model import CostModel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: one cost model for the whole evaluation
COST = CostModel()

_native_cache: dict[tuple, float] = {}


def cached_native_ns(workload) -> float:
    key = (workload.name, tuple(sorted(workload.params.items())))
    if key not in _native_cache:
        _native_cache[key] = native_time_ns(workload, COST)
    return _native_cache[key]


def record(fig: str, text: str) -> str:
    """Print a figure's table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{fig}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    return text


def sweep_workers() -> int:
    """Process count for parallel sweeps: the ``--workers`` pytest option
    (exported by benchmarks/conftest.py) or the ``REPRO_WORKERS`` env var;
    0/1 means serial."""
    try:
        return int(os.environ.get("REPRO_WORKERS", "0"))
    except ValueError:
        return 0


def run_sweep(
    workload,
    ratios,
    systems=("fastswap", "leap", "aifm", "mira"),
    max_iterations: int = 2,
    num_threads: int = 1,
    workers: int | None = None,
) -> Sweep:
    if workers is None:
        workers = sweep_workers()
    native = cached_native_ns(workload)
    return sweep_systems(
        workload,
        COST,
        ratios,
        systems=systems,
        max_iterations=max_iterations,
        num_threads=num_threads,
        workers=workers,
        native_ns=native,
    )


def profile_swap(workload, local_bytes: int):
    """Iteration-0 run: everything in the generic swap section,
    instrumented.  Returns (source module, RunResult)."""
    from repro.core import MiraPlan, compile_program, run_plan

    src = workload.build_module()
    compiled = compile_program(src, MiraPlan.swap_only(), COST, instrument=True)
    result = run_plan(compiled, COST, local_bytes, workload.data_init)
    return src, result


def planned(workload, local_bytes: int, fraction: float = 0.1, num_threads: int = 1):
    """Plan sections from a fresh swap profile.  Returns
    (source module, plan, swap RunResult)."""
    from repro.core import plan_sections

    src, swap_result = profile_swap(workload, local_bytes)
    plan = plan_sections(
        src,
        COST,
        local_bytes,
        swap_result.profiler,
        fraction=fraction,
        num_threads=num_threads,
    )
    return src, plan, swap_result


def run_with_plan(src, plan, local_bytes: int, data_init, num_threads: int = 1):
    from repro.core import compile_program, run_plan

    compiled = compile_program(src, plan, COST)
    return run_plan(
        compiled, COST, local_bytes, data_init, num_threads=num_threads
    )


def overhead_ratio(result) -> float:
    """The paper's cache performance overhead: far-memory runtime time
    over remaining execution time (section 4.1)."""
    runtime = result.runtime_ns
    exec_ns = result.elapsed_ns - runtime
    return runtime / exec_ns if exec_ns > 0 else float("inf")
